//! Deterministic parallel fan-out for the experiment suite.
//!
//! Every sweep in the workspace — `Vctrl` grids, frequency points,
//! noise-amplitude steps, ablation cells, bus channels — is a batch of
//! **independent** tasks. This crate runs such batches on a scoped thread
//! pool while guaranteeing that results are *bit-identical at every
//! thread count*:
//!
//! * results are collected by task index, never by completion order;
//! * no task shares mutable state (or an RNG) with another task — code
//!   that needs randomness derives one private stream per task with
//!   [`task_seed`], instead of drawing from a sequential generator whose
//!   consumption order would depend on scheduling.
//!
//! The thread count comes from `std::thread::available_parallelism`,
//! overridable with the `VARDELAY_THREADS` environment variable
//! (`VARDELAY_THREADS=1` is the serial baseline). See DESIGN.md §8 for
//! the determinism rules.
//!
//! Two failure disciplines are offered: [`Runner::run`] propagates the
//! first task panic to the caller (the default — a bug in experiment code
//! should abort loudly), while [`Runner::try_run`] isolates each task
//! under `catch_unwind` and returns `Vec<Result<T, TaskError>>`, with an
//! optional deterministic bounded-[`RetryPolicy`] — the substrate of the
//! fault-injection campaigns (DESIGN.md §10).
//!
//! Every batch is instrumented through `vardelay-obs` (DESIGN.md §9):
//! batch/task counters, a per-batch duration span, worker-balance and
//! queue-drain histograms. Instrumentation is purely observational — the
//! determinism tests run with it on and off and assert byte-identical
//! CSVs.
//!
//! # Examples
//!
//! ```
//! use vardelay_runner::Runner;
//!
//! let squares = Runner::new(4).run(8, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! // A different thread count produces the identical result.
//! assert_eq!(squares, Runner::new(1).run(8, |i| i * i));
//! ```

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

use vardelay_obs as obs;
use vardelay_siggen::SplitMix64;

/// Error describing one failed task in a fallible batch run through
/// [`Runner::try_run`] or [`Runner::run_with_deadline`].
///
/// For [`TaskError::Panicked`] the message is the panic payload when it
/// was a `&str`/`String` (the overwhelmingly common case — `panic!`,
/// `assert!`, `expect`), so the error is a deterministic function of the
/// task's inputs and campaign results containing it stay
/// bit-reproducible at every thread count. [`TaskError::DeadlineExceeded`]
/// is inherently wall-clock dependent — deadline runs are robustness
/// gates, not byte-pinned outputs (DESIGN.md §11).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskError {
    /// The task panicked on its final attempt.
    Panicked {
        /// Index of the failed task within its batch.
        task: usize,
        /// How many times the task was attempted (≥ 1).
        attempts: u32,
        /// The panic message of the final attempt.
        message: String,
    },
    /// The task ran past its [`Deadline`] budget — either it bailed
    /// cooperatively at a [`Deadline::check`] point, or the supervisor
    /// flagged it as a straggler and it finished late.
    DeadlineExceeded {
        /// Index of the flagged task within its batch.
        task: usize,
        /// The per-task budget it was given, milliseconds.
        budget_ms: u64,
        /// How long it actually ran, milliseconds.
        elapsed_ms: u64,
    },
}

impl TaskError {
    /// Index of the failed task within its batch, for either variant.
    pub fn task(&self) -> usize {
        match *self {
            TaskError::Panicked { task, .. } | TaskError::DeadlineExceeded { task, .. } => task,
        }
    }

    /// Whether this is a [`TaskError::DeadlineExceeded`].
    pub fn is_deadline(&self) -> bool {
        matches!(self, TaskError::DeadlineExceeded { .. })
    }
}

impl core::fmt::Display for TaskError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TaskError::Panicked {
                task,
                attempts,
                message,
            } => write!(
                f,
                "task {task} panicked after {attempts} attempt(s): {message}"
            ),
            TaskError::DeadlineExceeded {
                task,
                budget_ms,
                elapsed_ms,
            } => write!(
                f,
                "task {task} exceeded its {budget_ms} ms deadline (ran {elapsed_ms} ms)"
            ),
        }
    }
}

impl std::error::Error for TaskError {}

/// Cooperative deadline token threaded into [`Runner::run_with_deadline`]
/// tasks.
///
/// The token is cheap to clone (an `Arc<AtomicBool>` plus two plain
/// values) and answers [`Deadline::expired`] from either side: the flag
/// the supervisor thread flips when it spots a straggler — a relaxed
/// atomic load, no clock syscall — or, as a fallback that works without
/// any supervisor, a direct elapsed-vs-budget comparison. Long-running
/// tasks call [`Deadline::check`] at natural cancellation points (once
/// per sweep step, per channel, per scenario) to bail as soon as the
/// budget is gone instead of wasting the rest of the campaign's wall
/// clock.
#[derive(Debug, Clone)]
pub struct Deadline {
    start: Instant,
    budget: Duration,
    flagged: Arc<AtomicBool>,
}

/// Sentinel panic payload for a cooperative deadline bail — recognized
/// by [`Runner::run_with_deadline`] (and any other supervisor that
/// catches task unwinds, e.g. the `vardelay-serve` worker pool) and
/// converted to [`TaskError::DeadlineExceeded`] instead of a panic
/// error. Probe a caught payload with `payload.is::<DeadlineBail>()`.
pub struct DeadlineBail;

impl Deadline {
    /// A deadline starting now with the given per-task budget.
    pub fn after(budget: Duration) -> Self {
        Deadline {
            start: Instant::now(),
            budget,
            flagged: Arc::new(AtomicBool::new(false)),
        }
    }

    /// The per-task budget.
    pub fn budget(&self) -> Duration {
        self.budget
    }

    /// Time since the task started.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Budget remaining (zero once expired).
    pub fn remaining(&self) -> Duration {
        self.budget.saturating_sub(self.elapsed())
    }

    /// Whether the budget is gone — flagged by the supervisor, or past
    /// the budget by this task's own clock.
    pub fn expired(&self) -> bool {
        self.flagged.load(Ordering::Relaxed) || self.elapsed() > self.budget
    }

    /// Marks the deadline expired (supervisor side; idempotent).
    pub fn expire(&self) {
        self.flagged.store(true, Ordering::Relaxed);
    }

    /// Cooperative cancellation point: returns immediately while the
    /// budget holds, bails out of the task (unwinds with a sentinel the
    /// runner converts to [`TaskError::DeadlineExceeded`]) once it is
    /// gone.
    pub fn check(&self) {
        if self.expired() {
            std::panic::panic_any(DeadlineBail);
        }
    }

    /// The per-task budget configured in the environment:
    /// `VARDELAY_DEADLINE_MS=N` (N > 0). `None` when unset or
    /// unparseable — deadline enforcement is strictly opt-in, because
    /// flagging is wall-clock dependent.
    pub fn budget_from_env() -> Option<Duration> {
        std::env::var("VARDELAY_DEADLINE_MS")
            .ok()
            .and_then(|s| s.trim().parse::<u64>().ok())
            .filter(|&ms| ms > 0)
            .map(Duration::from_millis)
    }
}

/// Bounded-retry policy for [`Runner::try_run_with_retry`].
///
/// Retries are for *transient* faults (a flaky measurement, an injected
/// soft error); each retry simply re-invokes the task closure with the
/// same index. The backoff schedule is **deterministic and simulated**:
/// `backoff_base_us << (attempt − 1)` is recorded in the
/// `runner.retry_backoff_us` histogram but never slept on, so retrying
/// changes no experiment bytes and costs no wall clock (DESIGN.md §10).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum attempts per task (clamped to at least 1).
    pub max_attempts: u32,
    /// Base of the simulated exponential backoff schedule, microseconds.
    pub backoff_base_us: u64,
}

impl RetryPolicy {
    /// No retries: one attempt per task.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            backoff_base_us: 0,
        }
    }

    /// Up to `max_attempts` attempts with a 100 µs simulated backoff base.
    pub fn attempts(max_attempts: u32) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            backoff_base_us: 100,
        }
    }

    /// The simulated backoff before retry number `attempt` (1-based count
    /// of attempts already made).
    pub fn backoff_us(&self, attempt: u32) -> u64 {
        self.backoff_base_us << (attempt - 1).min(16)
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::none()
    }
}

/// Renders a caught panic payload as a stable message.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Parses a `VARDELAY_THREADS`-style override string into a worker
/// count. The rules — shared by every consumer of the variable
/// ([`Runner::from_env`], the `vardelay-serve` worker pool, `repro`) so
/// they cannot drift: surrounding whitespace is ignored, the value must
/// parse as a positive integer, and anything else (`0`, garbage, empty)
/// means "no override".
pub fn parse_thread_override(raw: &str) -> Option<usize> {
    raw.trim().parse::<usize>().ok().filter(|&n| n > 0)
}

/// Resolves the process's worker-thread count: the `VARDELAY_THREADS`
/// override when set and valid (see [`parse_thread_override`]), else
/// `std::thread::available_parallelism`, else 1. Always ≥ 1.
pub fn worker_threads_from_env() -> usize {
    std::env::var("VARDELAY_THREADS")
        .ok()
        .as_deref()
        .and_then(parse_thread_override)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Derives the seed of task `task_index`'s private RNG stream from the
/// experiment's root seed.
///
/// The rule (documented in DESIGN.md §8, fixed forever for
/// reproducibility): XOR the root seed with `(index + 1) · φ64` — the
/// 64-bit golden-ratio constant SplitMix64 itself increments by — then
/// advance one SplitMix64 step. Distinct indices land in statistically
/// independent regions of the generator's sequence, and the `+ 1` keeps
/// task 0 from collapsing onto the raw root seed.
///
/// # Examples
///
/// ```
/// use vardelay_runner::task_seed;
///
/// let a = task_seed(20080310, 0);
/// let b = task_seed(20080310, 1);
/// assert_ne!(a, b);
/// assert_eq!(a, task_seed(20080310, 0)); // pure function of (seed, index)
/// ```
pub fn task_seed(root_seed: u64, task_index: u64) -> u64 {
    const PHI64: u64 = 0x9e37_79b9_7f4a_7c15;
    SplitMix64::new(root_seed ^ task_index.wrapping_add(1).wrapping_mul(PHI64)).next_u64()
}

/// A fixed-width scoped thread pool that maps tasks by index.
///
/// `Runner` is `Copy` — it is a policy (a thread count), not a pool of
/// live threads; threads are scoped to each call and joined before it
/// returns, so a panicking task propagates to the caller exactly as in
/// the serial path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Runner {
    threads: usize,
}

impl Runner {
    /// A runner using `threads` worker threads (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        Runner {
            threads: threads.max(1),
        }
    }

    /// A single-threaded runner — the serial reference path.
    pub fn serial() -> Self {
        Runner::new(1)
    }

    /// A runner sized from the `VARDELAY_THREADS` environment variable,
    /// falling back to `std::thread::available_parallelism` (see
    /// [`worker_threads_from_env`]).
    pub fn from_env() -> Self {
        Runner::new(worker_threads_from_env())
    }

    /// The process-wide default runner (first use fixes the size from the
    /// environment, see [`Runner::from_env`]).
    pub fn global() -> Runner {
        static GLOBAL: OnceLock<Runner> = OnceLock::new();
        *GLOBAL.get_or_init(Runner::from_env)
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Maps `f` over `items`, fanning tasks out across the pool; the
    /// result vector is ordered by item index regardless of which thread
    /// computed what, so the output is identical at every thread count.
    ///
    /// # Panics
    ///
    /// Re-raises the panic of the first panicking task (by join order).
    pub fn par_map<I, T, F>(&self, items: &[I], f: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        F: Fn(usize, &I) -> T + Sync,
    {
        self.run(items.len(), |i| f(i, &items[i]))
    }

    /// Runs tasks `0..n` through `f`, returning results in task order.
    ///
    /// Instrumented with `vardelay-obs` (observational only — never
    /// touches task results): `runner.batches` / `runner.tasks` counters,
    /// a `runner.batch_us` span over the whole fan-out, a
    /// `runner.tasks_per_worker` histogram exposing scheduling balance,
    /// and `runner.queue_drain_us` — the tail latency between the last
    /// task being *claimed* and the last worker *finishing*, i.e. how
    /// long the batch runs starved with an empty queue.
    ///
    /// # Panics
    ///
    /// Re-raises the panic of the first panicking task (by join order).
    pub fn run<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let instrumented = obs::enabled() && n > 0;
        let batch_span = instrumented.then(|| {
            obs::counter("runner.batches").incr();
            obs::counter("runner.tasks").add(n as u64);
            obs::span("runner.batch_us")
        });
        let workers = self.threads.min(n);
        if workers <= 1 {
            let out = (0..n).map(f).collect();
            if instrumented {
                obs::histogram("runner.tasks_per_worker").record(n as u64);
                obs::histogram("runner.queue_drain_us").record(0);
            }
            drop(batch_span);
            return out;
        }

        // Work-stealing by atomic index; each worker keeps (index, value)
        // pairs locally so no result ever waits on a lock.
        let next = AtomicUsize::new(0);
        // Micros from batch start to the moment a worker first saw the
        // queue empty (u64::MAX until then).
        let drained_at_us = AtomicU64::new(u64::MAX);
        let batch_start = Instant::now();
        let f = &f;
        let per_worker: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            local.push((i, f(i)));
                        }
                        if instrumented {
                            drained_at_us.fetch_min(
                                batch_start.elapsed().as_micros() as u64,
                                Ordering::Relaxed,
                            );
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|e| resume_unwind(e)))
                .collect()
        });
        if instrumented {
            let balance = obs::histogram("runner.tasks_per_worker");
            for worker in &per_worker {
                balance.record(worker.len() as u64);
            }
            let drained = drained_at_us.load(Ordering::Relaxed);
            if drained != u64::MAX {
                let total = batch_start.elapsed().as_micros() as u64;
                obs::histogram("runner.queue_drain_us").record(total.saturating_sub(drained));
            }
        }
        drop(batch_span);

        let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
        for (i, value) in per_worker.into_iter().flatten() {
            debug_assert!(slots[i].is_none(), "task {i} computed twice");
            slots[i] = Some(value);
        }
        slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| slot.unwrap_or_else(|| panic!("task {i} never ran")))
            .collect()
    }

    /// Fallible variant of [`Runner::run`]: every task runs under
    /// [`catch_unwind`] isolation, so one panicking task degrades the
    /// batch to a per-task [`TaskError`] instead of aborting it. Results
    /// keep task order, and since the error message is derived from the
    /// panic payload, the whole `Vec` is bit-identical at every thread
    /// count.
    ///
    /// The default [`Runner::run`] stays panic-propagating — use this
    /// path when a batch must survive faulty members (fault-injection
    /// campaigns, degraded-mode deskew).
    pub fn try_run<T, F>(&self, n: usize, f: F) -> Vec<Result<T, TaskError>>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.try_run_with_retry(n, RetryPolicy::none(), f)
    }

    /// [`Runner::try_run`] with a deterministic bounded-retry policy: a
    /// panicking task is re-invoked up to `policy.max_attempts` times
    /// before its [`TaskError`] is recorded. Backoff is simulated (see
    /// [`RetryPolicy`]) — recorded in `runner.retry_backoff_us`, never
    /// slept on — so retried batches stay bit-reproducible.
    ///
    /// Instrumented with `runner.task_panics` / `runner.task_retries`
    /// counters and a `runner.task_attempts` histogram.
    pub fn try_run_with_retry<T, F>(
        &self,
        n: usize,
        policy: RetryPolicy,
        f: F,
    ) -> Vec<Result<T, TaskError>>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let max_attempts = policy.max_attempts.max(1);
        let f = &f;
        self.run(n, move |i| {
            let mut attempt = 0;
            loop {
                attempt += 1;
                match catch_unwind(AssertUnwindSafe(|| f(i))) {
                    Ok(value) => {
                        if obs::enabled() {
                            obs::histogram("runner.task_attempts").record(attempt as u64);
                        }
                        return Ok(value);
                    }
                    Err(payload) => {
                        if obs::enabled() {
                            obs::counter("runner.task_panics").incr();
                        }
                        if attempt < max_attempts {
                            if obs::enabled() {
                                obs::counter("runner.task_retries").incr();
                                obs::histogram("runner.retry_backoff_us")
                                    .record(policy.backoff_us(attempt));
                            }
                            continue;
                        }
                        if obs::enabled() {
                            obs::histogram("runner.task_attempts").record(attempt as u64);
                        }
                        return Err(TaskError::Panicked {
                            task: i,
                            attempts: attempt,
                            message: panic_message(payload.as_ref()),
                        });
                    }
                }
            }
        })
    }

    /// Runs tasks `0..n` like [`Runner::try_run`], but with a per-task
    /// wall-clock `budget`: each task receives a cooperative [`Deadline`]
    /// token, and a **supervisor thread** watches the batch, flagging any
    /// straggler whose elapsed time passes the budget. A flagged task's
    /// result becomes [`TaskError::DeadlineExceeded`] whether it bailed
    /// at a [`Deadline::check`] point or ran to completion late — the
    /// supervisor cannot kill a thread, so a non-cooperative straggler
    /// still occupies its worker until it returns, but its overrun is
    /// observed live (`runner.deadline_flagged`) and its result is
    /// quarantined rather than trusted.
    ///
    /// Instrumented with the `runner.deadline_exceeded` counter and the
    /// `runner.task_overrun_us` histogram (overrun past budget, µs).
    ///
    /// Determinism caveat: whether a borderline task beats its budget is
    /// wall-clock dependent. Use deadlines as a robustness gate
    /// (`VARDELAY_DEADLINE_MS`, chaos runs), not inside byte-pinned
    /// experiment paths (DESIGN.md §11).
    pub fn run_with_deadline<T, F>(
        &self,
        n: usize,
        budget: Duration,
        f: F,
    ) -> Vec<Result<T, TaskError>>
    where
        T: Send,
        F: Fn(usize, &Deadline) -> T + Sync,
    {
        // Supervisor plumbing: tasks register their deadline tokens as
        // they start; the supervisor ticks until the batch signals done,
        // flipping the flag of any registered deadline past its budget.
        let active: Arc<Mutex<Vec<Deadline>>> = Arc::new(Mutex::new(Vec::new()));
        #[allow(clippy::mutex_atomic)] // Condvar needs the Mutex<bool>
        let done = Arc::new((Mutex::new(false), Condvar::new()));
        let supervisor = std::thread::spawn({
            let active = Arc::clone(&active);
            let done = Arc::clone(&done);
            move || {
                let (lock, cv) = &*done;
                let mut finished = lock
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                while !*finished {
                    let (guard, _) = cv
                        .wait_timeout(finished, Duration::from_millis(1))
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    finished = guard;
                    let registered = active
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    for d in registered.iter() {
                        if !d.flagged.load(Ordering::Relaxed) && d.elapsed() > d.budget {
                            d.expire();
                            if obs::enabled() {
                                obs::counter("runner.deadline_flagged").incr();
                            }
                        }
                    }
                }
            }
        });

        let f = &f;
        let active_ref = &active;
        let out = self.run(n, move |i| {
            let deadline = Deadline::after(budget);
            active_ref
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .push(deadline.clone());
            let result = catch_unwind(AssertUnwindSafe(|| f(i, &deadline)));
            let elapsed = deadline.elapsed();
            let deadline_err = || {
                if obs::enabled() {
                    obs::counter("runner.deadline_exceeded").incr();
                    obs::histogram("runner.task_overrun_us")
                        .record(elapsed.saturating_sub(budget).as_micros() as u64);
                }
                Err(TaskError::DeadlineExceeded {
                    task: i,
                    budget_ms: budget.as_millis() as u64,
                    elapsed_ms: elapsed.as_millis() as u64,
                })
            };
            match result {
                Err(payload) if payload.is::<DeadlineBail>() => deadline_err(),
                Err(payload) => {
                    if obs::enabled() {
                        obs::counter("runner.task_panics").incr();
                    }
                    Err(TaskError::Panicked {
                        task: i,
                        attempts: 1,
                        message: panic_message(payload.as_ref()),
                    })
                }
                Ok(_) if elapsed > budget => deadline_err(),
                Ok(value) => Ok(value),
            }
        });

        {
            let (lock, cv) = &*done;
            *lock
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner) = true;
            cv.notify_all();
        }
        let _ = supervisor.join();
        out
    }
}

impl Default for Runner {
    fn default() -> Self {
        Runner::global()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_ordered_by_index() {
        let out = Runner::new(8).run(100, |i| i * 3);
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let work = |i: usize| {
            let mut rng = SplitMix64::new(task_seed(42, i as u64));
            (0..50).map(|_| rng.next_f64()).sum::<f64>()
        };
        let serial = Runner::serial().run(37, work);
        for threads in [2, 3, 8, 16] {
            let parallel = Runner::new(threads).run(37, work);
            assert_eq!(serial, parallel, "threads = {threads}");
        }
    }

    #[test]
    fn par_map_passes_items_and_indices() {
        let items = vec![10, 20, 30];
        let out = Runner::new(2).par_map(&items, |i, &x| x + i);
        assert_eq!(out, vec![10, 21, 32]);
    }

    #[test]
    fn empty_and_single_batches() {
        let empty: Vec<usize> = Runner::new(4).run(0, |i| i);
        assert!(empty.is_empty());
        assert_eq!(Runner::new(4).run(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn zero_thread_request_clamps_to_one() {
        assert_eq!(Runner::new(0).threads(), 1);
    }

    #[test]
    fn thread_override_parsing_rejects_zero_and_garbage() {
        // Pure probes on the shared parse rules (env mutation in tests
        // races other threads, so the env wrapper is exercised by the
        // CI matrix instead).
        assert_eq!(parse_thread_override("4"), Some(4));
        assert_eq!(parse_thread_override("  8\n"), Some(8));
        assert_eq!(parse_thread_override("0"), None, "0 is not a worker count");
        assert_eq!(parse_thread_override("-3"), None);
        assert_eq!(parse_thread_override("four"), None);
        assert_eq!(parse_thread_override("4.5"), None);
        assert_eq!(parse_thread_override(""), None);
        assert_eq!(parse_thread_override("  "), None);
        assert_eq!(parse_thread_override("18446744073709551616"), None);
    }

    #[test]
    fn worker_threads_from_env_is_at_least_one() {
        // Whatever the ambient environment says, the resolution never
        // returns 0 — both serve's worker pool and the runner divide by
        // it.
        assert!(worker_threads_from_env() >= 1);
        assert_eq!(Runner::from_env().threads(), worker_threads_from_env());
    }

    #[test]
    #[should_panic(expected = "task boom")]
    fn task_panics_propagate() {
        Runner::new(4).run(8, |i| {
            if i == 5 {
                panic!("task boom");
            }
            i
        });
    }

    #[test]
    fn task_seeds_are_distinct_and_stable() {
        let seeds: Vec<u64> = (0..1000).map(|i| task_seed(20080310, i)).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len(), "collision in task seeds");
        assert_eq!(task_seed(20080310, 123), seeds[123]);
    }

    #[test]
    fn instrumentation_counts_batches_and_tasks() {
        obs::set_enabled(true);
        let batches = obs::counter("runner.batches").get();
        let tasks = obs::counter("runner.tasks").get();
        let out = Runner::new(4).run(12, |i| i);
        assert_eq!(out.len(), 12);
        assert!(obs::counter("runner.batches").get() > batches);
        assert!(obs::counter("runner.tasks").get() >= tasks + 12);
        // Worker balance histogram observed the batch.
        assert!(obs::histogram("runner.tasks_per_worker").count() > 0);
    }

    #[test]
    fn try_run_isolates_a_panicking_task() {
        // Acceptance pin: a 64-task batch with one injected panic returns
        // 63 Ok results and 1 Err(TaskError), identically at every thread
        // count.
        let work = |i: usize| {
            if i == 17 {
                panic!("injected fault on task 17");
            }
            i * 2
        };
        let serial = Runner::serial().try_run(64, work);
        for threads in [2, 4, 8, 16] {
            let parallel = Runner::new(threads).try_run(64, work);
            assert_eq!(serial, parallel, "try_run diverged at {threads} threads");
        }
        assert_eq!(serial.iter().filter(|r| r.is_ok()).count(), 63);
        let err = serial[17].as_ref().unwrap_err();
        assert_eq!(err.task(), 17);
        assert_eq!(
            *err,
            TaskError::Panicked {
                task: 17,
                attempts: 1,
                message: "injected fault on task 17".to_owned()
            }
        );
        assert!(err.to_string().contains("task 17"));
        // Healthy neighbours are untouched.
        assert_eq!(serial[16], Ok(32));
        assert_eq!(serial[18], Ok(36));
    }

    #[test]
    fn retry_policy_recovers_transient_faults_deterministically() {
        use std::sync::atomic::AtomicU32;
        // Task 3 fails on its first two attempts, then succeeds; task 9
        // fails forever. Attempt counters are per-task so the transient
        // schedule is independent of scheduling order.
        let failures: Vec<AtomicU32> = (0..16).map(|_| AtomicU32::new(0)).collect();
        let work = |i: usize| {
            let attempt = failures[i].fetch_add(1, Ordering::Relaxed) + 1;
            if i == 3 && attempt <= 2 {
                panic!("transient fault");
            }
            if i == 9 {
                panic!("permanent fault");
            }
            i
        };
        let out = Runner::new(4).try_run_with_retry(16, RetryPolicy::attempts(3), work);
        assert_eq!(out[3], Ok(3), "transient fault must be retried away");
        match out[9].as_ref().unwrap_err() {
            TaskError::Panicked {
                attempts, message, ..
            } => {
                assert_eq!(*attempts, 3);
                assert_eq!(message, "permanent fault");
            }
            other => panic!("expected panic error, got {other:?}"),
        }
        assert_eq!(out.iter().filter(|r| r.is_ok()).count(), 15);
    }

    #[test]
    fn retry_backoff_schedule_is_exponential_and_bounded() {
        let p = RetryPolicy::attempts(4);
        assert_eq!(p.backoff_us(1), 100);
        assert_eq!(p.backoff_us(2), 200);
        assert_eq!(p.backoff_us(3), 400);
        // The shift is clamped so absurd attempt counts cannot overflow.
        assert_eq!(p.backoff_us(1000), 100 << 16);
        assert_eq!(RetryPolicy::none().max_attempts, 1);
        assert_eq!(RetryPolicy::attempts(0).max_attempts, 1);
    }

    #[test]
    fn try_run_without_faults_matches_run() {
        let fallible = Runner::new(4).try_run(32, |i| i * i);
        let infallible = Runner::new(4).run(32, |i| i * i);
        assert_eq!(
            fallible.into_iter().collect::<Result<Vec<_>, _>>().unwrap(),
            infallible
        );
    }

    #[test]
    fn deadline_run_passes_fast_tasks_through() {
        let out = Runner::new(4).run_with_deadline(16, Duration::from_secs(30), |i, d| {
            assert!(!d.expired(), "generous budget must not expire");
            d.check(); // cooperative point is a no-op while the budget holds
            i * i
        });
        assert_eq!(
            out.into_iter().collect::<Result<Vec<_>, _>>().unwrap(),
            (0..16).map(|i| i * i).collect::<Vec<_>>()
        );
    }

    #[test]
    fn cooperative_straggler_is_flagged_by_the_supervisor() {
        // Task 2 spins forever, checking its deadline each lap; the
        // supervisor must flip the flag so `check` bails it out.
        let out = Runner::new(4).run_with_deadline(8, Duration::from_millis(25), |i, d| {
            if i == 2 {
                loop {
                    d.check();
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
            i
        });
        assert_eq!(out.iter().filter(|r| r.is_ok()).count(), 7);
        match out[2].as_ref().unwrap_err() {
            TaskError::DeadlineExceeded {
                task,
                budget_ms,
                elapsed_ms,
            } => {
                assert_eq!(*task, 2);
                assert_eq!(*budget_ms, 25);
                assert!(*elapsed_ms >= 25, "elapsed {elapsed_ms} ms");
            }
            other => panic!("expected deadline error, got {other:?}"),
        }
        assert!(out[2].as_ref().unwrap_err().is_deadline());
    }

    #[test]
    fn non_cooperative_straggler_is_flagged_on_completion() {
        obs::set_enabled(true);
        let exceeded = obs::counter("runner.deadline_exceeded").get();
        // The task never checks its deadline — it just takes too long.
        // The supervisor cannot kill it, but its late result must be
        // quarantined as DeadlineExceeded, not returned as Ok.
        let out = Runner::new(2).run_with_deadline(3, Duration::from_millis(10), |i, _| {
            if i == 1 {
                std::thread::sleep(Duration::from_millis(40));
            }
            i
        });
        assert_eq!(out[0], Ok(0));
        assert_eq!(out[2], Ok(2));
        assert!(out[1].as_ref().unwrap_err().is_deadline(), "{:?}", out[1]);
        assert!(obs::counter("runner.deadline_exceeded").get() > exceeded);
        assert!(obs::histogram("runner.task_overrun_us").count() > 0);
    }

    #[test]
    fn panics_under_deadline_stay_panic_errors() {
        let out = Runner::new(2).run_with_deadline(4, Duration::from_secs(30), |i, _| {
            assert!(i != 3, "boom on task 3");
            i
        });
        match out[3].as_ref().unwrap_err() {
            TaskError::Panicked { task, message, .. } => {
                assert_eq!(*task, 3);
                assert!(message.contains("boom on task 3"));
            }
            other => panic!("expected panic error, got {other:?}"),
        }
    }

    #[test]
    fn deadline_budget_env_parsing() {
        // Pure parsing probe on the token itself (env mutation in tests
        // races other threads, so probe Deadline's arithmetic instead).
        let d = Deadline::after(Duration::from_millis(50));
        assert!(!d.expired());
        assert!(d.remaining() <= Duration::from_millis(50));
        assert_eq!(d.budget(), Duration::from_millis(50));
        d.expire();
        assert!(d.expired(), "supervisor flag forces expiry");
    }

    #[test]
    fn task_streams_decorrelate() {
        // Adjacent tasks' streams must behave independently.
        let mut a = SplitMix64::new(task_seed(7, 0));
        let mut b = SplitMix64::new(task_seed(7, 1));
        let n = 2000;
        let corr: f64 = (0..n)
            .map(|_| (a.next_f64() - 0.5) * (b.next_f64() - 0.5))
            .sum::<f64>()
            / n as f64;
        assert!(corr.abs() < 0.02, "corr {corr}");
    }
}
