//! Deterministic parallel fan-out for the experiment suite.
//!
//! Every sweep in the workspace — `Vctrl` grids, frequency points,
//! noise-amplitude steps, ablation cells, bus channels — is a batch of
//! **independent** tasks. This crate runs such batches on a scoped thread
//! pool while guaranteeing that results are *bit-identical at every
//! thread count*:
//!
//! * results are collected by task index, never by completion order;
//! * no task shares mutable state (or an RNG) with another task — code
//!   that needs randomness derives one private stream per task with
//!   [`task_seed`], instead of drawing from a sequential generator whose
//!   consumption order would depend on scheduling.
//!
//! The thread count comes from `std::thread::available_parallelism`,
//! overridable with the `VARDELAY_THREADS` environment variable
//! (`VARDELAY_THREADS=1` is the serial baseline). See DESIGN.md §8 for
//! the determinism rules.
//!
//! Every batch is instrumented through `vardelay-obs` (DESIGN.md §9):
//! batch/task counters, a per-batch duration span, worker-balance and
//! queue-drain histograms. Instrumentation is purely observational — the
//! determinism tests run with it on and off and assert byte-identical
//! CSVs.
//!
//! # Examples
//!
//! ```
//! use vardelay_runner::Runner;
//!
//! let squares = Runner::new(4).run(8, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! // A different thread count produces the identical result.
//! assert_eq!(squares, Runner::new(1).run(8, |i| i * i));
//! ```

use std::panic::resume_unwind;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use vardelay_obs as obs;
use vardelay_siggen::SplitMix64;

/// Derives the seed of task `task_index`'s private RNG stream from the
/// experiment's root seed.
///
/// The rule (documented in DESIGN.md §8, fixed forever for
/// reproducibility): XOR the root seed with `(index + 1) · φ64` — the
/// 64-bit golden-ratio constant SplitMix64 itself increments by — then
/// advance one SplitMix64 step. Distinct indices land in statistically
/// independent regions of the generator's sequence, and the `+ 1` keeps
/// task 0 from collapsing onto the raw root seed.
///
/// # Examples
///
/// ```
/// use vardelay_runner::task_seed;
///
/// let a = task_seed(20080310, 0);
/// let b = task_seed(20080310, 1);
/// assert_ne!(a, b);
/// assert_eq!(a, task_seed(20080310, 0)); // pure function of (seed, index)
/// ```
pub fn task_seed(root_seed: u64, task_index: u64) -> u64 {
    const PHI64: u64 = 0x9e37_79b9_7f4a_7c15;
    SplitMix64::new(root_seed ^ task_index.wrapping_add(1).wrapping_mul(PHI64)).next_u64()
}

/// A fixed-width scoped thread pool that maps tasks by index.
///
/// `Runner` is `Copy` — it is a policy (a thread count), not a pool of
/// live threads; threads are scoped to each call and joined before it
/// returns, so a panicking task propagates to the caller exactly as in
/// the serial path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Runner {
    threads: usize,
}

impl Runner {
    /// A runner using `threads` worker threads (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        Runner {
            threads: threads.max(1),
        }
    }

    /// A single-threaded runner — the serial reference path.
    pub fn serial() -> Self {
        Runner::new(1)
    }

    /// A runner sized from the `VARDELAY_THREADS` environment variable,
    /// falling back to `std::thread::available_parallelism`.
    pub fn from_env() -> Self {
        let threads = std::env::var("VARDELAY_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        Runner::new(threads)
    }

    /// The process-wide default runner (first use fixes the size from the
    /// environment, see [`Runner::from_env`]).
    pub fn global() -> Runner {
        static GLOBAL: OnceLock<Runner> = OnceLock::new();
        *GLOBAL.get_or_init(Runner::from_env)
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Maps `f` over `items`, fanning tasks out across the pool; the
    /// result vector is ordered by item index regardless of which thread
    /// computed what, so the output is identical at every thread count.
    ///
    /// # Panics
    ///
    /// Re-raises the panic of the first panicking task (by join order).
    pub fn par_map<I, T, F>(&self, items: &[I], f: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        F: Fn(usize, &I) -> T + Sync,
    {
        self.run(items.len(), |i| f(i, &items[i]))
    }

    /// Runs tasks `0..n` through `f`, returning results in task order.
    ///
    /// Instrumented with `vardelay-obs` (observational only — never
    /// touches task results): `runner.batches` / `runner.tasks` counters,
    /// a `runner.batch_us` span over the whole fan-out, a
    /// `runner.tasks_per_worker` histogram exposing scheduling balance,
    /// and `runner.queue_drain_us` — the tail latency between the last
    /// task being *claimed* and the last worker *finishing*, i.e. how
    /// long the batch runs starved with an empty queue.
    ///
    /// # Panics
    ///
    /// Re-raises the panic of the first panicking task (by join order).
    pub fn run<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let instrumented = obs::enabled() && n > 0;
        let batch_span = instrumented.then(|| {
            obs::counter("runner.batches").incr();
            obs::counter("runner.tasks").add(n as u64);
            obs::span("runner.batch_us")
        });
        let workers = self.threads.min(n);
        if workers <= 1 {
            let out = (0..n).map(f).collect();
            if instrumented {
                obs::histogram("runner.tasks_per_worker").record(n as u64);
                obs::histogram("runner.queue_drain_us").record(0);
            }
            drop(batch_span);
            return out;
        }

        // Work-stealing by atomic index; each worker keeps (index, value)
        // pairs locally so no result ever waits on a lock.
        let next = AtomicUsize::new(0);
        // Micros from batch start to the moment a worker first saw the
        // queue empty (u64::MAX until then).
        let drained_at_us = AtomicU64::new(u64::MAX);
        let batch_start = Instant::now();
        let f = &f;
        let per_worker: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            local.push((i, f(i)));
                        }
                        if instrumented {
                            drained_at_us.fetch_min(
                                batch_start.elapsed().as_micros() as u64,
                                Ordering::Relaxed,
                            );
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|e| resume_unwind(e)))
                .collect()
        });
        if instrumented {
            let balance = obs::histogram("runner.tasks_per_worker");
            for worker in &per_worker {
                balance.record(worker.len() as u64);
            }
            let drained = drained_at_us.load(Ordering::Relaxed);
            if drained != u64::MAX {
                let total = batch_start.elapsed().as_micros() as u64;
                obs::histogram("runner.queue_drain_us").record(total.saturating_sub(drained));
            }
        }
        drop(batch_span);

        let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
        for (i, value) in per_worker.into_iter().flatten() {
            debug_assert!(slots[i].is_none(), "task {i} computed twice");
            slots[i] = Some(value);
        }
        slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| slot.unwrap_or_else(|| panic!("task {i} never ran")))
            .collect()
    }
}

impl Default for Runner {
    fn default() -> Self {
        Runner::global()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_ordered_by_index() {
        let out = Runner::new(8).run(100, |i| i * 3);
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let work = |i: usize| {
            let mut rng = SplitMix64::new(task_seed(42, i as u64));
            (0..50).map(|_| rng.next_f64()).sum::<f64>()
        };
        let serial = Runner::serial().run(37, work);
        for threads in [2, 3, 8, 16] {
            let parallel = Runner::new(threads).run(37, work);
            assert_eq!(serial, parallel, "threads = {threads}");
        }
    }

    #[test]
    fn par_map_passes_items_and_indices() {
        let items = vec![10, 20, 30];
        let out = Runner::new(2).par_map(&items, |i, &x| x + i);
        assert_eq!(out, vec![10, 21, 32]);
    }

    #[test]
    fn empty_and_single_batches() {
        let empty: Vec<usize> = Runner::new(4).run(0, |i| i);
        assert!(empty.is_empty());
        assert_eq!(Runner::new(4).run(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn zero_thread_request_clamps_to_one() {
        assert_eq!(Runner::new(0).threads(), 1);
    }

    #[test]
    #[should_panic(expected = "task boom")]
    fn task_panics_propagate() {
        Runner::new(4).run(8, |i| {
            if i == 5 {
                panic!("task boom");
            }
            i
        });
    }

    #[test]
    fn task_seeds_are_distinct_and_stable() {
        let seeds: Vec<u64> = (0..1000).map(|i| task_seed(20080310, i)).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len(), "collision in task seeds");
        assert_eq!(task_seed(20080310, 123), seeds[123]);
    }

    #[test]
    fn instrumentation_counts_batches_and_tasks() {
        obs::set_enabled(true);
        let batches = obs::counter("runner.batches").get();
        let tasks = obs::counter("runner.tasks").get();
        let out = Runner::new(4).run(12, |i| i);
        assert_eq!(out.len(), 12);
        assert!(obs::counter("runner.batches").get() > batches);
        assert!(obs::counter("runner.tasks").get() >= tasks + 12);
        // Worker balance histogram observed the batch.
        assert!(obs::histogram("runner.tasks_per_worker").count() > 0);
    }

    #[test]
    fn task_streams_decorrelate() {
        // Adjacent tasks' streams must behave independently.
        let mut a = SplitMix64::new(task_seed(7, 0));
        let mut b = SplitMix64::new(task_seed(7, 1));
        let n = 2000;
        let corr: f64 = (0..n)
            .map(|_| (a.next_f64() - 0.5) * (b.next_f64() - 0.5))
            .sum::<f64>()
            / n as f64;
        assert!(corr.abs() < 0.02, "corr {corr}");
    }
}
