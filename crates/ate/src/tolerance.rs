//! Receiver jitter-tolerance testing — the application the paper's §5
//! injector exists for: "in some testing applications we actually want to
//! add a controlled amount of jitter (for example to test input jitter
//! tolerance)".
//!
//! The test fixes the receiver's sampling phase at the clean-signal eye
//! centre, then ramps the injected jitter until the receiver starts
//! failing; the largest tolerated total jitter is the DUT's margin.

use crate::dut::DutReceiver;
use vardelay_core::{JitterInjector, ModelConfig};
use vardelay_measure::{tie_sequence, JitterStats, Series};
use vardelay_siggen::{BitPattern, EdgeStream};
use vardelay_units::{BitRate, Time, Voltage};

/// Configuration of one jitter-tolerance run.
#[derive(Debug, Clone)]
pub struct JitterToleranceTest {
    /// Data rate of the stressed link.
    pub rate: BitRate,
    /// Pattern length in bits per measurement point.
    pub bits: usize,
    /// Receiver under test.
    pub receiver: DutReceiver,
    /// Violation-rate threshold counted as failure.
    pub fail_threshold: f64,
    /// Noise amplitudes to sweep (generator pk-pk ratings).
    pub noise_steps: Vec<Voltage>,
    /// Seed for the stimulus and injector.
    pub seed: u64,
}

impl JitterToleranceTest {
    /// A standard 6.4 Gb/s tolerance run over 0–1.2 Vpp in 13 steps
    /// against a slow receiver (±50 ps window at a 156 ps UI, ~28 ps of
    /// timing margin at the eye centre).
    ///
    /// Note the physics the paper states in §5: the injectable jitter is
    /// "limited by the fine-delay adjustment range" (~57 ps pk-pk), so a
    /// fast receiver at a wide UI can never be failed by injection alone —
    /// tolerance tests therefore run at the DUT's full rate on a signal
    /// that already carries its own jitter.
    pub fn standard(seed: u64) -> Self {
        JitterToleranceTest {
            rate: BitRate::from_gbps(6.4),
            bits: 4000,
            receiver: DutReceiver::new(Time::from_ps(50.0), Time::from_ps(50.0)),
            fail_threshold: 1e-3,
            noise_steps: (0..13)
                .map(|i| Voltage::from_mv(i as f64 * 100.0))
                .collect(),
            seed,
        }
    }

    /// Runs the sweep with the given injector model configuration.
    pub fn run(&self, config: &ModelConfig) -> ToleranceResult {
        // The stressed signal carries DUT-like base jitter (RJ + a PJ
        // tone); the injector adds on top of it.
        use vardelay_siggen::{CompositeJitter, GaussianRj, JitterModel, SinusoidalPj};
        use vardelay_units::Frequency;
        let clean = EdgeStream::nrz(&BitPattern::prbs7(1, self.bits), self.rate);
        let stream = CompositeJitter::new()
            .with(GaussianRj::new(Time::from_ps(1.5), self.seed))
            .with(SinusoidalPj::new(
                Time::from_ps(6.0),
                Frequency::from_mhz(53.0),
                0.0,
            ))
            .apply(&clean);

        // One injector serves the whole ramp (characterizing the fine
        // line is the expensive part); reprogramming the noise source
        // resets its state.
        let mut injector = JitterInjector::new(config, self.seed);

        // Fix the sampling phase on the unstressed signal, as a real
        // receiver's CDR would have locked before the stress ramp.
        let clean_out = injector.inject(&stream);
        let phase = self.receiver.best_phase(&clean_out, 64);

        let mut curve = Series::new("tolerance", "injected_tj_ps", "violation_rate");
        let mut max_tolerated: Option<Time> = None;
        for &vpp in &self.noise_steps {
            injector.set_noise_peak_to_peak(vpp);
            let out = injector.inject(&stream);
            let tj = JitterStats::from_times(&tie_sequence(&out))
                .expect("stream carries edges")
                .peak_to_peak;
            let rate = self.receiver.violation_rate(&out, phase);
            curve.push(tj.as_ps(), rate);
            if rate <= self.fail_threshold {
                max_tolerated = Some(max_tolerated.map_or(tj, |m| m.max(tj)));
            }
        }
        ToleranceResult {
            curve,
            max_tolerated,
            sampling_phase: phase,
        }
    }
}

/// The outcome of a tolerance run.
#[derive(Debug, Clone, PartialEq)]
pub struct ToleranceResult {
    /// Violation rate versus injected total jitter.
    pub curve: Series,
    /// The largest injected TJ the receiver tolerated, if any step passed.
    pub max_tolerated: Option<Time>,
    /// The sampling phase the test locked at.
    pub sampling_phase: Time,
}

impl ToleranceResult {
    /// Whether the receiver met a minimum-tolerance requirement.
    pub fn meets(&self, required: Time) -> bool {
        self.max_tolerated.is_some_and(|t| t >= required)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_standard() -> ToleranceResult {
        JitterToleranceTest::standard(13).run(&ModelConfig::paper_prototype().quiet())
    }

    #[test]
    fn tolerance_curve_degrades_with_stress() {
        let r = run_standard();
        assert_eq!(r.curve.len(), 13);
        // First point (no stress) passes, last point (1.2 Vpp) fails.
        assert!(r.curve.ys[0] <= 1e-3, "clean rate {}", r.curve.ys[0]);
        assert!(
            r.curve.ys[12] > 1e-3,
            "max stress should fail: {}",
            r.curve.ys[12]
        );
        // Violation rate grows (weakly) with injected jitter.
        assert!(r.curve.ys[12] > r.curve.ys[2]);
    }

    #[test]
    fn tolerated_jitter_is_tens_of_picoseconds() {
        let r = run_standard();
        let t = r.max_tolerated.expect("at least the clean step passes");
        // ~28 ps of margin tolerates tens of ps of bounded injected TJ.
        assert!((15.0..200.0).contains(&t.as_ps()), "tolerated {t}");
        assert!(r.meets(Time::from_ps(15.0)));
        assert!(!r.meets(Time::from_ps(500.0)));
    }

    #[test]
    fn wider_receiver_window_tolerates_more() {
        let cfg = ModelConfig::paper_prototype().quiet();
        let narrow = {
            let mut t = JitterToleranceTest::standard(5);
            t.receiver = DutReceiver::new(Time::from_ps(55.0), Time::from_ps(55.0));
            t.run(&cfg)
        };
        let wide = {
            let mut t = JitterToleranceTest::standard(5);
            t.receiver = DutReceiver::new(Time::from_ps(35.0), Time::from_ps(35.0));
            t.run(&cfg)
        };
        let narrow_t = narrow.max_tolerated.expect("passes at low stress");
        let wide_t = wide.max_tolerated.expect("passes at low stress");
        // Smaller setup/hold window (more margin) tolerates at least as
        // much injected jitter.
        assert!(wide_t >= narrow_t, "{wide_t} vs {narrow_t}");
    }
}
