//! A retimer: CDR + decision flip-flop, regenerating a clean stream.
//!
//! The receiving end of a serial lane does not pass jitter through — it
//! *re-launches* each decided bit on its recovered clock. Pairing
//! [`crate::BangBangCdr`] with a sampling register yields an output stream
//! whose jitter is only the CDR's residual wander, however dirty the
//! input was (as long as the decisions themselves were correct).

use crate::cdr::BangBangCdr;
use vardelay_siggen::{Edge, EdgeKind, EdgeStream};
use vardelay_units::Time;

/// A CDR-based retimer.
///
/// # Examples
///
/// ```
/// use vardelay_ate::{BangBangCdr, Retimer};
/// use vardelay_units::{BitRate, Time};
///
/// let ui = BitRate::from_gbps(6.4).bit_period();
/// let retimer = Retimer::new(BangBangCdr::new(ui, Time::from_ps(0.5)));
/// assert!((retimer.cdr().ui().as_ps() - 156.25).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Retimer {
    cdr: BangBangCdr,
}

impl Retimer {
    /// Creates a retimer around the given CDR.
    pub fn new(cdr: BangBangCdr) -> Self {
        Retimer { cdr }
    }

    /// The recovery loop.
    pub fn cdr(&self) -> BangBangCdr {
        self.cdr
    }

    /// Retimes a stream: tracks it with the CDR, samples the input level
    /// at each recovered eye centre, and re-launches the decided bits on
    /// the recovered bit boundaries.
    ///
    /// Returns an empty stream for inputs with no edges.
    pub fn retime(&self, input: &EdgeStream) -> EdgeStream {
        let ui = self.cdr.ui();
        let track = self.cdr.track(input);
        let Some(&first_boundary) = track.sampling_instants.first() else {
            return input.clone();
        };
        // Walk recovered bit slots from the first sampling instant to the
        // end of the capture, deciding each bit from the input level.
        let start = first_boundary - ui * 0.5;
        // Round, not floor: the CDR's sub-ps acquisition step must not
        // shave off the final bit slot.
        let slots = ((input.end() - start) / ui).round().max(0.0) as usize;
        let mut edges = Vec::new();
        let mut level = input.level_at(first_boundary);
        let initial_high = level;
        // The recovered clock wanders with the CDR; approximate its slot
        // boundaries by interpolating between tracked sampling instants.
        let mut sample_iter = track.sampling_instants.iter().peekable();
        let mut current_sample = first_boundary;
        for k in 0..slots {
            let nominal = first_boundary + ui * k as f64;
            // Advance the recovered-phase estimate to the latest tracked
            // sampling instant not beyond this slot.
            while let Some(&&s) = sample_iter.peek() {
                if s <= nominal + ui * 0.5 {
                    current_sample = s;
                    sample_iter.next();
                } else {
                    break;
                }
            }
            let phase = current_sample + ui * ((nominal - current_sample) / ui).round();
            let bit = input.level_at(phase);
            if bit != level {
                edges.push(Edge {
                    time: phase - ui * 0.5,
                    kind: if bit {
                        EdgeKind::Rising
                    } else {
                        EdgeKind::Falling
                    },
                });
                level = bit;
            }
        }
        EdgeStream::from_parts(
            sanitize(edges),
            start,
            input.end().max(start) + ui,
            initial_high,
            ui,
        )
    }
}

/// Drops same-polarity duplicates and enforces strict ordering.
fn sanitize(edges: Vec<Edge>) -> Vec<Edge> {
    let mut out: Vec<Edge> = Vec::with_capacity(edges.len());
    for e in edges {
        match out.last() {
            Some(last) if last.kind == e.kind => continue,
            Some(last) if e.time <= last.time => {
                let t = last.time + Time::from_fs(1.0);
                out.push(Edge { time: t, ..e });
            }
            _ => out.push(e),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vardelay_measure::{tie_sequence, JitterStats};
    use vardelay_siggen::{BitPattern, GaussianRj, JitterModel};
    use vardelay_units::BitRate;

    fn retimer() -> Retimer {
        let ui = BitRate::from_gbps(6.4).bit_period();
        Retimer::new(BangBangCdr::new(ui, Time::from_ps(0.4)))
    }

    #[test]
    fn clean_data_retimes_losslessly() {
        let pattern = BitPattern::prbs7(1, 500);
        let input = EdgeStream::nrz(&pattern, BitRate::from_gbps(6.4));
        let out = retimer().retime(&input);
        assert!(out.is_well_formed());
        // Same transition structure (up to the boundary slots).
        assert!(
            out.len().abs_diff(input.len()) <= 2,
            "{} vs {}",
            out.len(),
            input.len()
        );
    }

    #[test]
    fn retiming_strips_wideband_jitter() {
        let pattern = BitPattern::prbs7(1, 4000);
        let clean = EdgeStream::nrz(&pattern, BitRate::from_gbps(6.4));
        let dirty = GaussianRj::new(Time::from_ps(6.0), 3).apply(&clean);
        let out = retimer().retime(&dirty);

        let tj_in = JitterStats::from_times(&tie_sequence(&dirty))
            .expect("edges exist")
            .peak_to_peak;
        let tj_out = JitterStats::from_times(&tie_sequence(&out))
            .expect("edges exist")
            .peak_to_peak;
        assert!(
            tj_out < tj_in * 0.35,
            "retimer failed to clean: {tj_in} -> {tj_out}"
        );
    }

    #[test]
    fn decisions_survive_retiming() {
        // The retimed bit sequence equals the transmitted one over the
        // recovered window (the leading run before the first edge is not
        // part of the retimed capture).
        use crate::dut::DutReceiver;
        let pattern = BitPattern::prbs7(3, 800);
        let input = EdgeStream::nrz(&pattern, BitRate::from_gbps(6.4));
        let out = retimer().retime(&input);
        let rx = DutReceiver::ht3();
        let got = rx.sample_bits(&out, out.ui() * 0.5);
        let skip = ((out.start() - input.start()) / out.ui()).round().max(0.0) as usize;
        let expected = &pattern.bits()[skip..];
        let n = got.len().min(expected.len());
        assert!(n > 700, "recovered only {n} bits");
        let errors = got[..n]
            .iter()
            .zip(&expected[..n])
            .filter(|(a, b)| a != b)
            .count();
        assert_eq!(errors, 0, "bit errors after retiming");
    }

    #[test]
    fn empty_input_passes_through() {
        let input = EdgeStream::nrz(
            &BitPattern::from_str("0000").unwrap(),
            BitRate::from_gbps(1.0),
        );
        let out = retimer().retime(&input);
        assert!(out.is_empty());
    }
}
