//! ATE substrate: tester channels, parallel buses, a DUT receiver and the
//! closed-loop deskew application.
//!
//! The paper's end application is deskewing parallel buses of 6.4 Gb/s
//! signals from a Teradyne UltraFlex (SB6G sources), whose native deskew
//! resolution is only ~100 ps (paper §1, Fig. 2). This crate builds the
//! pieces of that bench:
//!
//! * [`AteChannel`] — a pattern source with static intrinsic skew, source
//!   jitter, and a programmable delay quantized to the tester's ~100 ps
//!   timing resolution.
//! * [`ParallelBus`] — N channels carrying a common pattern with
//!   channel-to-channel skew (the "before" half of Fig. 2).
//! * [`DutReceiver`] — a sampling register with a setup/hold window, used
//!   to scan eyes and verify alignment (Fig. 1).
//! * [`DeskewEngine`] — the closed loop: measure per-channel skew, correct
//!   the bulk with the ATE's 100 ps steps, and the residue with one
//!   vardelay circuit per channel (<5 ps channel-to-channel accuracy).
//! * [`scenario`] — ready-made HyperTransport-like (parallel-synchronous)
//!   and PCI-Express-like (independent-lane) bus configurations.

pub mod bus;
pub mod cdr;
pub mod channel;
pub mod deskew;
pub mod dut;
pub mod margin;
pub mod report;
pub mod retimer;
pub mod scenario;
pub mod tolerance;

pub use bus::ParallelBus;
pub use cdr::{jitter_tolerance_mask, BangBangCdr, CdrTrack, MaskPoint};
pub use channel::AteChannel;
pub use deskew::{
    ChannelCorrection, DegradedOutcome, DegradedPolicy, DeskewEngine, DeskewError, DeskewOutcome,
    MeasurementFaultHook, QuarantinedChannel,
};
pub use dut::DutReceiver;
pub use margin::{margin_shmoo, MarginMap, MarginRow, ShmooConfig};
pub use retimer::Retimer;
pub use scenario::{BusScenario, ScenarioKind};
pub use tolerance::{JitterToleranceTest, ToleranceResult};
