//! A bang-bang clock-and-data-recovery model.
//!
//! The fixed-phase receiver in [`crate::dut`] is the right model for a
//! parallel-synchronous bus (HyperTransport-class, forwarded clock). For
//! serial lanes (PCIe-class) the receiver recovers its clock from the
//! data, and a jitter-tolerance test then probes the *loop*: slow jitter
//! is tracked and tolerated in huge amounts, jitter above the loop
//! bandwidth must fit in the static eye. This module implements the
//! classic first-order bang-bang (Alexander) CDR and the resulting
//! tolerance mask experiment.

use crate::dut::DutReceiver;
use vardelay_siggen::EdgeStream;
use vardelay_units::{Frequency, Time};

/// A first-order bang-bang CDR.
///
/// Every data edge drives a binary early/late decision; the sampling
/// phase steps by a fixed `step` toward the edge-centred position. The
/// loop bandwidth is roughly `step·edge_rate/(2π·UI)` fractions of the
/// bit rate.
///
/// # Examples
///
/// ```
/// use vardelay_ate::cdr::BangBangCdr;
/// use vardelay_units::Time;
///
/// let cdr = BangBangCdr::new(Time::from_ps(156.25), Time::from_ps(0.4));
/// assert!((cdr.ui().as_ps() - 156.25).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BangBangCdr {
    ui: Time,
    step: Time,
}

/// The trajectory of one CDR tracking run.
#[derive(Debug, Clone, PartialEq)]
pub struct CdrTrack {
    /// Recovered sampling instants (eye centres), one per observed edge.
    pub sampling_instants: Vec<Time>,
    /// Residual phase error per edge: edge time minus the recovered bit
    /// boundary (the quantity the static eye must absorb).
    pub residual: Vec<Time>,
}

impl BangBangCdr {
    /// Creates a CDR for signals with unit interval `ui` and the given
    /// per-edge phase step.
    ///
    /// # Panics
    ///
    /// Panics unless both `ui` and `step` are positive and
    /// `step < ui / 4` (larger steps make the loop unstable).
    pub fn new(ui: Time, step: Time) -> Self {
        assert!(ui > Time::ZERO, "unit interval must be positive");
        assert!(step > Time::ZERO, "phase step must be positive");
        assert!(step < ui / 4.0, "phase step must stay below UI/4");
        BangBangCdr { ui, step }
    }

    /// The nominal unit interval.
    pub fn ui(&self) -> Time {
        self.ui
    }

    /// The per-edge phase step.
    pub fn step(&self) -> Time {
        self.step
    }

    /// Approximate −3 dB loop bandwidth for a stream with transition
    /// density `density` (0..1): `f ≈ density·step / (2π·UI²)`
    /// in hertz (first-order loop small-signal analysis).
    pub fn loop_bandwidth(&self, density: f64) -> Frequency {
        let hz = density * self.step.as_s()
            / (2.0 * core::f64::consts::PI * self.ui.as_s() * self.ui.as_s());
        Frequency::from_hz(hz)
    }

    /// Tracks a stream: the loop walks its bit-boundary estimate toward
    /// each observed edge and reports per-edge residual phase error.
    ///
    /// Returns an empty track for an empty stream.
    pub fn track(&self, stream: &EdgeStream) -> CdrTrack {
        let mut sampling = Vec::with_capacity(stream.len());
        let mut residual = Vec::with_capacity(stream.len());
        let Some(first) = stream.edges().first() else {
            return CdrTrack {
                sampling_instants: sampling,
                residual,
            };
        };
        // Instantaneous acquisition on the first edge (real CDRs sweep;
        // irrelevant for steady-state tolerance).
        let mut boundary = first.time;
        for e in stream.edges() {
            // Advance the boundary estimate to the UI slot nearest this
            // edge.
            let slots = ((e.time - boundary) / self.ui).round();
            boundary += self.ui * slots;
            let err = e.time - boundary;
            // Bang-bang update: step toward the edge.
            boundary += self.step * err.as_s().signum();
            residual.push(err);
            sampling.push(boundary + self.ui * 0.5);
        }
        CdrTrack {
            sampling_instants: sampling,
            residual,
        }
    }

    /// Fraction of edges whose residual phase error invades a receiver's
    /// setup/hold window around the recovered sampling instant — the
    /// CDR-referred violation rate.
    pub fn violation_rate(&self, stream: &EdgeStream, receiver: &DutReceiver) -> f64 {
        let track = self.track(stream);
        if track.residual.is_empty() {
            return 0.0;
        }
        let margin_left = self.ui * 0.5 - receiver.setup();
        let margin_right = self.ui * 0.5 - receiver.hold();
        let violations = track
            .residual
            .iter()
            .filter(|r| **r > margin_left || **r < -margin_right)
            .count();
        violations as f64 / track.residual.len() as f64
    }
}

/// One point of a jitter-tolerance mask: the largest sinusoidal-jitter
/// amplitude tolerated at a given frequency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MaskPoint {
    /// PJ frequency.
    pub frequency: Frequency,
    /// Largest tolerated PJ amplitude (peak, not pk-pk).
    pub tolerated_amplitude: Time,
}

/// Measures the classic jitter-tolerance mask of a CDR + receiver: for
/// each PJ frequency, the tolerated amplitude is found by bisection on
/// the violation rate. Low-frequency jitter is tracked by the loop and
/// tolerated in large amounts; above the loop bandwidth the tolerance
/// floors out at the static eye margin.
///
/// `fail_threshold` is the violation rate counted as failure;
/// `max_amplitude` bounds the search.
pub fn jitter_tolerance_mask(
    cdr: &BangBangCdr,
    receiver: &DutReceiver,
    base: &EdgeStream,
    freqs: &[Frequency],
    max_amplitude: Time,
    fail_threshold: f64,
) -> Vec<MaskPoint> {
    use vardelay_siggen::{JitterModel, SinusoidalPj};
    freqs
        .iter()
        .map(|&f| {
            let passes = |amp: Time| -> bool {
                if amp <= Time::ZERO {
                    return true;
                }
                let stressed = SinusoidalPj::new(amp, f, 0.0).apply(base);
                cdr.violation_rate(&stressed, receiver) <= fail_threshold
            };
            // Bisection between 0 (passes) and max_amplitude.
            let mut lo = Time::ZERO;
            let mut hi = max_amplitude;
            if passes(hi) {
                lo = hi;
            } else {
                for _ in 0..12 {
                    let mid = (lo + hi) * 0.5;
                    if passes(mid) {
                        lo = mid;
                    } else {
                        hi = mid;
                    }
                }
            }
            MaskPoint {
                frequency: f,
                tolerated_amplitude: lo,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vardelay_measure::JitterStats;
    use vardelay_siggen::{BitPattern, GaussianRj, JitterModel, SinusoidalPj};
    use vardelay_units::BitRate;

    fn stream(bits: usize) -> EdgeStream {
        EdgeStream::nrz(&BitPattern::prbs7(1, bits), BitRate::from_gbps(6.4))
    }

    fn cdr() -> BangBangCdr {
        BangBangCdr::new(BitRate::from_gbps(6.4).bit_period(), Time::from_ps(0.5))
    }

    #[test]
    fn clean_stream_tracks_to_near_zero_residual() {
        let track = cdr().track(&stream(2000));
        let tail = &track.residual[track.residual.len() / 2..];
        let stats = JitterStats::from_times(tail).expect("edges exist");
        assert!(
            stats.peak_to_peak < Time::from_ps(1.5),
            "residual pp {}",
            stats.peak_to_peak
        );
    }

    #[test]
    fn slow_pj_is_tracked_fast_pj_is_not() {
        let base = stream(20_000);
        let amp = Time::from_ps(20.0);
        let residual_pp = |freq_mhz: f64| {
            let jittered = SinusoidalPj::new(amp, Frequency::from_mhz(freq_mhz), 0.0).apply(&base);
            let track = cdr().track(&jittered);
            let tail = &track.residual[track.residual.len() / 2..];
            JitterStats::from_times(tail)
                .expect("edges exist")
                .peak_to_peak
        };
        let slow = residual_pp(0.05); // 50 kHz — deep inside loop BW
        let fast = residual_pp(200.0); // 200 MHz — far above loop BW
        assert!(
            slow < amp,
            "slow PJ should be tracked: residual {slow} vs amp {amp}"
        );
        assert!(
            fast > amp * 1.2,
            "fast PJ should pass through untracked: {fast}"
        );
        assert!(
            fast > slow * 1.5,
            "no high-pass behaviour: {slow} vs {fast}"
        );
    }

    #[test]
    fn random_jitter_mostly_passes_through() {
        let base = stream(10_000);
        let jittered = GaussianRj::new(Time::from_ps(2.0), 3).apply(&base);
        let track = cdr().track(&jittered);
        let tail = &track.residual[track.residual.len() / 2..];
        let stats = JitterStats::from_times(tail).expect("edges exist");
        // Wideband RJ is above the loop bandwidth: RMS survives (within
        // the dither the loop itself adds).
        assert!((stats.rms.as_ps() - 2.0).abs() < 0.8, "rms {}", stats.rms);
    }

    #[test]
    fn violation_rate_uses_recovered_clock() {
        let base = stream(5_000);
        let rx = DutReceiver::new(Time::from_ps(50.0), Time::from_ps(50.0));
        // A huge but very slow sinusoid: tracked, so no violations…
        let slow =
            SinusoidalPj::new(Time::from_ps(60.0), Frequency::from_mhz(0.02), 0.0).apply(&base);
        assert_eq!(cdr().violation_rate(&slow, &rx), 0.0);
        // …whereas the same amplitude at high frequency fails hard.
        let fast =
            SinusoidalPj::new(Time::from_ps(60.0), Frequency::from_mhz(300.0), 0.0).apply(&base);
        assert!(cdr().violation_rate(&fast, &rx) > 0.05);
    }

    #[test]
    fn loop_bandwidth_scales_with_step() {
        let ui = BitRate::from_gbps(6.4).bit_period();
        let narrow = BangBangCdr::new(ui, Time::from_ps(0.2)).loop_bandwidth(0.5);
        let wide = BangBangCdr::new(ui, Time::from_ps(2.0)).loop_bandwidth(0.5);
        assert!((wide / narrow - 10.0).abs() < 1e-9);
    }

    #[test]
    fn tolerance_mask_has_the_classic_shape() {
        let base = stream(4_000);
        let rx = DutReceiver::new(Time::from_ps(45.0), Time::from_ps(45.0));
        let freqs: Vec<Frequency> = [0.05, 1.0, 50.0, 400.0]
            .iter()
            .map(|&m| Frequency::from_mhz(m))
            .collect();
        let mask = jitter_tolerance_mask(&cdr(), &rx, &base, &freqs, Time::from_ps(400.0), 1e-3);
        // Tolerance decreases (weakly) with frequency…
        for w in mask.windows(2) {
            assert!(
                w[1].tolerated_amplitude <= w[0].tolerated_amplitude * 1.3,
                "{:?}",
                mask
            );
        }
        // …tracked region tolerates far more than the untracked floor.
        assert!(
            mask[0].tolerated_amplitude > mask[3].tolerated_amplitude * 2.0,
            "no tracking benefit: {mask:?}"
        );
        // The high-frequency floor is set by the static margin (~33 ps).
        let floor = mask[3].tolerated_amplitude;
        assert!((10.0..60.0).contains(&floor.as_ps()), "floor {floor}");
    }

    #[test]
    #[should_panic(expected = "UI/4")]
    fn unstable_step_rejected() {
        let _ = BangBangCdr::new(Time::from_ps(100.0), Time::from_ps(40.0));
    }
}
