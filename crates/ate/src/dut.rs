//! A behavioral DUT receiver: a sampling register with a setup/hold
//! window (paper Fig. 1).

use vardelay_measure::Series;
use vardelay_siggen::EdgeStream;
use vardelay_units::Time;

/// A data-sampling register clocked at the stream's unit interval.
///
/// A bit samples cleanly when no data transition falls inside the
/// `[sample − setup, sample + hold]` window; transitions inside the window
/// are counted as (potential) errors. Scanning the clock phase across the
/// UI produces the receiver's timing bathtub, whose centre is where the
/// paper aligns the clock in Fig. 1.
///
/// # Examples
///
/// ```
/// use vardelay_ate::DutReceiver;
/// use vardelay_units::Time;
///
/// let rx = DutReceiver::new(Time::from_ps(10.0), Time::from_ps(10.0));
/// assert!((rx.setup().as_ps() - 10.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DutReceiver {
    setup: Time,
    hold: Time,
}

impl DutReceiver {
    /// Creates a receiver with the given setup and hold requirements.
    ///
    /// # Panics
    ///
    /// Panics if either window is negative.
    pub fn new(setup: Time, hold: Time) -> Self {
        assert!(setup >= Time::ZERO, "setup must be non-negative");
        assert!(hold >= Time::ZERO, "hold must be non-negative");
        DutReceiver { setup, hold }
    }

    /// A HyperTransport-3-class receiver: ±10 ps window at 6.4 Gb/s.
    pub fn ht3() -> Self {
        Self::new(Time::from_ps(10.0), Time::from_ps(10.0))
    }

    /// The setup requirement.
    pub fn setup(&self) -> Time {
        self.setup
    }

    /// The hold requirement.
    pub fn hold(&self) -> Time {
        self.hold
    }

    /// Counts setup/hold violations when sampling `stream` with a clock at
    /// `phase` within each unit interval (0 = bit boundary), and returns
    /// the violation fraction over the observed bits.
    ///
    /// Returns 0.0 for an empty stream.
    pub fn violation_rate(&self, stream: &EdgeStream, phase: Time) -> f64 {
        let ui = stream.ui();
        if stream.is_empty() || ui <= Time::ZERO {
            return 0.0;
        }
        let bits = ((stream.end() - stream.start()) / ui).round() as u64;
        if bits == 0 {
            return 0.0;
        }
        // A violation is any edge within ±(setup|hold) of a sampling
        // instant. Sampling instants sit at k·UI + phase; fold each edge
        // to its distance from the nearest sampler.
        let mut violations = 0u64;
        for t in stream.times() {
            let x = (t - phase).as_s() / ui.as_s();
            let dist = (x - x.round()) * ui.as_s();
            let early_ok = dist < -self.hold.as_s(); // edge safely after previous sample
            let late_ok = dist > self.setup.as_s(); // edge safely before next sample
            if !(early_ok || late_ok) {
                violations += 1;
            }
        }
        violations as f64 / bits as f64
    }

    /// Scans the sampling phase across one UI in `steps` positions and
    /// returns the violation-rate bathtub.
    ///
    /// # Panics
    ///
    /// Panics if `steps == 0`.
    pub fn eye_scan(&self, stream: &EdgeStream, steps: usize) -> Series {
        assert!(steps > 0, "eye scan needs at least one step");
        let ui = stream.ui();
        let mut series = Series::new("eye-scan", "phase_ps", "violation_rate");
        for i in 0..steps {
            let phase = ui * (i as f64 / steps as f64);
            series.push(phase.as_ps(), self.violation_rate(stream, phase));
        }
        series
    }

    /// Samples the stream's logic level at `phase` within every unit
    /// interval, returning the recovered bit sequence — what the latch
    /// actually captures.
    pub fn sample_bits(&self, stream: &EdgeStream, phase: Time) -> Vec<bool> {
        let ui = stream.ui();
        if stream.is_empty() || ui <= Time::ZERO {
            return Vec::new();
        }
        let bits = ((stream.end() - stream.start()) / ui).round() as usize;
        (0..bits)
            .map(|k| stream.level_at(stream.start() + ui * k as f64 + phase))
            .collect()
    }

    /// True bit-error ratio: samples the stream at `phase` and compares
    /// against the expected transmitted bits. Returns `None` when the
    /// recovered and expected lengths differ by more than one bit (gross
    /// misalignment — count it as total failure, not a BER).
    pub fn bit_error_ratio(
        &self,
        stream: &EdgeStream,
        phase: Time,
        expected: &[bool],
    ) -> Option<f64> {
        let got = self.sample_bits(stream, phase);
        if got.is_empty() || got.len().abs_diff(expected.len()) > 1 {
            return None;
        }
        let n = got.len().min(expected.len());
        let errors = got[..n]
            .iter()
            .zip(&expected[..n])
            .filter(|(a, b)| a != b)
            .count();
        Some(errors as f64 / n as f64)
    }

    /// The sampling phase at the centre of the widest minimum-violation
    /// plateau — where the paper aligns the clock to the data eye (Fig. 1).
    pub fn best_phase(&self, stream: &EdgeStream, steps: usize) -> Time {
        let scan = self.eye_scan(stream, steps);
        let rates: Vec<f64> = scan.points().map(|(_, r)| r).collect();
        let min_rate = rates.iter().copied().fold(f64::INFINITY, f64::min);
        // Widest contiguous run at the minimum, scanning the doubled index
        // space so a plateau wrapping the UI boundary is still found.
        let at_min = |i: usize| (rates[i % steps] - min_rate).abs() < 1e-12;
        let mut best_start = 0usize;
        let mut best_len = 0usize;
        let mut run_start = 0usize;
        let mut run_len = 0usize;
        for i in 0..steps * 2 {
            if at_min(i) {
                if run_len == 0 {
                    run_start = i;
                }
                run_len += 1;
                if run_len > best_len {
                    best_len = run_len;
                    best_start = run_start;
                }
            } else {
                run_len = 0;
            }
        }
        let centre = (best_start + best_len / 2) % steps;
        stream.ui() * (centre as f64 / steps as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vardelay_siggen::{BitPattern, GaussianRj, JitterModel};
    use vardelay_units::BitRate;

    fn clean_stream() -> EdgeStream {
        EdgeStream::nrz(&BitPattern::prbs7(1, 1270), BitRate::from_gbps(6.4))
    }

    #[test]
    fn centre_sampling_is_clean() {
        let rx = DutReceiver::ht3();
        let s = clean_stream();
        let mid = s.ui() * 0.5;
        assert_eq!(rx.violation_rate(&s, mid), 0.0);
    }

    #[test]
    fn boundary_sampling_violates() {
        let rx = DutReceiver::ht3();
        let s = clean_stream();
        // Sampling right at the bit boundary hits every transition.
        let rate = rx.violation_rate(&s, Time::ZERO);
        assert!(rate > 0.3, "rate {rate}");
    }

    #[test]
    fn best_phase_is_near_eye_centre() {
        let rx = DutReceiver::ht3();
        let s = clean_stream();
        let best = rx.best_phase(&s, 64);
        let ui = s.ui();
        let frac = best / ui;
        assert!((0.2..0.8).contains(&frac), "frac {frac}");
    }

    #[test]
    fn jitter_widens_the_violation_region() {
        let rx = DutReceiver::ht3();
        let clean = clean_stream();
        let dirty = GaussianRj::new(Time::from_ps(6.0), 5).apply(&clean);
        let clean_open = rx
            .eye_scan(&clean, 64)
            .points()
            .filter(|&(_, r)| r == 0.0)
            .count();
        let dirty_open = rx
            .eye_scan(&dirty, 64)
            .points()
            .filter(|&(_, r)| r == 0.0)
            .count();
        assert!(dirty_open < clean_open, "{dirty_open} vs {clean_open}");
    }

    #[test]
    fn sampled_bits_match_the_pattern_at_eye_centre() {
        let rx = DutReceiver::ht3();
        let pattern = BitPattern::prbs7(1, 500);
        let s = EdgeStream::nrz(&pattern, BitRate::from_gbps(6.4));
        let mid = s.ui() * 0.5;
        let ber = rx
            .bit_error_ratio(&s, mid, pattern.bits())
            .expect("aligned capture");
        assert_eq!(ber, 0.0);
    }

    #[test]
    fn boundary_sampling_makes_real_bit_errors() {
        let rx = DutReceiver::ht3();
        let pattern = BitPattern::prbs7(1, 2000);
        let clean = EdgeStream::nrz(&pattern, BitRate::from_gbps(6.4));
        let s = GaussianRj::new(Time::from_ps(15.0), 9).apply(&clean);
        // Sampling right at the boundary with heavy jitter flips bits.
        let ber = rx
            .bit_error_ratio(&s, Time::ZERO, pattern.bits())
            .expect("aligned capture");
        assert!(ber > 0.01, "ber {ber}");
        // At the eye centre the same signal is recovered cleanly.
        let centre = rx
            .bit_error_ratio(&s, s.ui() * 0.5, pattern.bits())
            .expect("aligned capture");
        assert!(centre < ber / 5.0, "centre {centre} vs boundary {ber}");
    }

    #[test]
    fn gross_misalignment_is_not_a_ber() {
        let rx = DutReceiver::ht3();
        let pattern = BitPattern::prbs7(1, 100);
        let s = EdgeStream::nrz(&pattern, BitRate::from_gbps(6.4));
        assert!(rx.bit_error_ratio(&s, s.ui() * 0.5, &[true; 5]).is_none());
    }

    #[test]
    fn empty_stream_is_silent() {
        let s = EdgeStream::nrz(
            &BitPattern::from_str("0000").unwrap(),
            BitRate::from_gbps(1.0),
        );
        assert_eq!(DutReceiver::ht3().violation_rate(&s, Time::ZERO), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn windows_validated() {
        let _ = DutReceiver::new(Time::from_ps(-1.0), Time::ZERO);
    }
}
