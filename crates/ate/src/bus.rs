//! Parallel buses of ATE channels.

use crate::channel::AteChannel;
use vardelay_siggen::{BitPattern, EdgeStream, SplitMix64};
use vardelay_units::{BitRate, Time};

/// A bus of N ATE channels carrying a common pattern, with
/// channel-to-channel skew — the situation in the paper's Fig. 2(a).
///
/// # Examples
///
/// ```
/// use vardelay_ate::ParallelBus;
/// use vardelay_units::{BitRate, Time};
///
/// let bus = ParallelBus::with_random_skew(
///     4,
///     BitRate::from_gbps(6.4),
///     Time::from_ps(80.0),
///     2024,
/// );
/// assert_eq!(bus.width(), 4);
/// let spread = bus.skew_spread();
/// assert!(spread > Time::ZERO && spread <= Time::from_ps(160.0));
/// ```
#[derive(Debug, Clone)]
pub struct ParallelBus {
    channels: Vec<AteChannel>,
}

impl ParallelBus {
    /// Builds a bus from explicit channels.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is empty.
    pub fn new(channels: Vec<AteChannel>) -> Self {
        assert!(!channels.is_empty(), "a bus needs at least one channel");
        ParallelBus { channels }
    }

    /// Builds an `n`-channel SB6G-style bus with intrinsic skews drawn
    /// uniformly from `±spread` (channel 0 keeps zero skew as the timing
    /// reference).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn with_random_skew(n: usize, rate: BitRate, spread: Time, seed: u64) -> Self {
        assert!(n > 0, "a bus needs at least one channel");
        let mut rng = SplitMix64::new(seed);
        let pattern = BitPattern::prbs7(1, 2540);
        let channels = (0..n)
            .map(|i| {
                let skew = if i == 0 {
                    Time::ZERO
                } else {
                    Time::from_s(rng.uniform(-spread.as_s(), spread.as_s()))
                };
                AteChannel::sb6g(i, pattern.clone(), seed.wrapping_add(i as u64))
                    .with_rate(rate)
                    .with_intrinsic_skew(skew)
            })
            .collect();
        ParallelBus { channels }
    }

    /// Number of channels.
    pub fn width(&self) -> usize {
        self.channels.len()
    }

    /// The channels.
    pub fn channels(&self) -> &[AteChannel] {
        &self.channels
    }

    /// Mutable channel access (programming delays during deskew).
    pub fn channels_mut(&mut self) -> &mut [AteChannel] {
        &mut self.channels
    }

    /// Renders every channel's output stream.
    pub fn generate_all(&self) -> Vec<EdgeStream> {
        self.channels.iter().map(AteChannel::generate).collect()
    }

    /// [`ParallelBus::generate_all`] on an explicit
    /// [`Runner`](vardelay_runner::Runner). Channels render independently
    /// (each [`AteChannel::generate`] derives its jitter from the channel's
    /// own stored seed), so the result is bit-identical to the serial map
    /// at every thread count.
    pub fn generate_all_with(&self, runner: vardelay_runner::Runner) -> Vec<EdgeStream> {
        runner.par_map(&self.channels, |_, ch| ch.generate())
    }

    /// The intrinsic skews, per channel.
    pub fn intrinsic_skews(&self) -> Vec<Time> {
        self.channels
            .iter()
            .map(AteChannel::intrinsic_skew)
            .collect()
    }

    /// Peak-to-peak intrinsic skew across the bus — the number the deskew
    /// loop must beat down below 5 ps.
    pub fn skew_spread(&self) -> Time {
        let skews = self.intrinsic_skews();
        let mut lo = skews[0];
        let mut hi = skews[0];
        for &s in &skews {
            lo = lo.min(s);
            hi = hi.max(s);
        }
        hi - lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_bus_respects_spread() {
        let spread = Time::from_ps(80.0);
        let bus = ParallelBus::with_random_skew(8, BitRate::from_gbps(6.4), spread, 7);
        assert_eq!(bus.width(), 8);
        for ch in bus.channels() {
            assert!(ch.intrinsic_skew().abs() <= spread);
        }
        assert_eq!(bus.channels()[0].intrinsic_skew(), Time::ZERO);
    }

    #[test]
    fn streams_carry_the_common_pattern() {
        let bus = ParallelBus::with_random_skew(4, BitRate::from_gbps(6.4), Time::from_ps(50.0), 1);
        let streams = bus.generate_all();
        assert_eq!(streams.len(), 4);
        let n = streams[0].len();
        assert!(streams.iter().all(|s| s.len() == n));
    }

    #[test]
    fn skew_spread_is_peak_to_peak() {
        let p = BitPattern::prbs7(1, 127);
        let bus = ParallelBus::new(vec![
            AteChannel::sb6g(0, p.clone(), 1).with_intrinsic_skew(Time::from_ps(-30.0)),
            AteChannel::sb6g(1, p, 2).with_intrinsic_skew(Time::from_ps(45.0)),
        ]);
        assert!((bus.skew_spread().as_ps() - 75.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn empty_bus_rejected() {
        let _ = ParallelBus::new(Vec::new());
    }
}
