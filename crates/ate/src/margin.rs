//! Production margin shmoo: sampling phase × injected stress.
//!
//! A production test cell does not just check pass/fail at the nominal
//! operating point — it *shmoos*: sweeps the sampling phase across the
//! UI at several injected-jitter levels and maps where the part still
//! samples cleanly. The map's waist is the shipped margin.

use crate::dut::DutReceiver;
use vardelay_core::{JitterInjector, ModelConfig};
use vardelay_measure::Table;
use vardelay_siggen::{BitPattern, EdgeStream};
use vardelay_units::{BitRate, Voltage};

/// One row of a margin shmoo: the clean sampling window at a stress level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MarginRow {
    /// Injected noise amplitude (generator pk-pk rating).
    pub noise_vpp: Voltage,
    /// Number of scan positions with a violation rate below threshold.
    pub open_positions: usize,
    /// The open window as a fraction of the UI.
    pub open_fraction: f64,
}

/// The complete shmoo result.
#[derive(Debug, Clone, PartialEq)]
pub struct MarginMap {
    /// Rows in increasing stress order.
    pub rows: Vec<MarginRow>,
    /// Scan positions per row.
    pub steps: usize,
}

impl MarginMap {
    /// Renders the map as a table for the production log.
    pub fn to_table(&self) -> Table {
        let mut table = Table::new(
            "Margin shmoo (phase x injected stress)",
            &["noise_vpp_mv", "open_positions", "open_fraction"],
        );
        for r in &self.rows {
            table.push_owned_row(vec![
                format!("{:.0}", r.noise_vpp.as_mv()),
                r.open_positions.to_string(),
                format!("{:.3}", r.open_fraction),
            ]);
        }
        table
    }

    /// The largest stress level whose open window still covers `fraction`
    /// of the UI, if any.
    pub fn stress_margin_at(&self, fraction: f64) -> Option<Voltage> {
        self.rows
            .iter()
            .filter(|r| r.open_fraction >= fraction)
            .map(|r| r.noise_vpp)
            .fold(None, |acc, v| Some(acc.map_or(v, |a: Voltage| a.max(v))))
    }
}

/// Parameters of a margin shmoo run.
#[derive(Debug, Clone)]
pub struct ShmooConfig {
    /// Data rate of the stressed link.
    pub rate: BitRate,
    /// Pattern length per measurement point.
    pub bits: usize,
    /// Noise amplitudes to sweep (generator pk-pk ratings), ascending.
    pub noise_levels: Vec<Voltage>,
    /// Scan positions across one UI.
    pub steps: usize,
    /// Violation rate counted as failure.
    pub fail_threshold: f64,
    /// Seed for the stimulus and injector.
    pub seed: u64,
}

impl ShmooConfig {
    /// A standard production shmoo: 6.4 Gb/s, 2500 bits, 0–900 mVpp in
    /// five levels, 48 scan positions.
    pub fn standard(seed: u64) -> Self {
        ShmooConfig {
            rate: BitRate::from_gbps(6.4),
            bits: 2500,
            noise_levels: (0..5).map(|i| Voltage::from_mv(i as f64 * 225.0)).collect(),
            steps: 48,
            fail_threshold: 1e-3,
            seed,
        }
    }
}

/// Runs a margin shmoo: for each noise level, scan the receiver's
/// sampling phase over the configured positions and count the clean ones.
///
/// # Panics
///
/// Panics if the configuration has no scan positions or no stress levels.
pub fn margin_shmoo(model: &ModelConfig, receiver: &DutReceiver, shmoo: &ShmooConfig) -> MarginMap {
    assert!(shmoo.steps > 0, "shmoo needs scan positions");
    assert!(!shmoo.noise_levels.is_empty(), "shmoo needs stress levels");
    let stream = EdgeStream::nrz(&BitPattern::prbs7(1, shmoo.bits), shmoo.rate);
    let mut injector = JitterInjector::new(model, shmoo.seed);
    let rows = shmoo
        .noise_levels
        .iter()
        .map(|&vpp| {
            injector.set_noise_peak_to_peak(vpp);
            let out = injector.inject(&stream);
            let open = receiver
                .eye_scan(&out, shmoo.steps)
                .points()
                .filter(|&(_, r)| r <= shmoo.fail_threshold)
                .count();
            MarginRow {
                noise_vpp: vpp,
                open_positions: open,
                open_fraction: open as f64 / shmoo.steps as f64,
            }
        })
        .collect();
    MarginMap {
        rows,
        steps: shmoo.steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use vardelay_units::Time;

    fn run() -> MarginMap {
        margin_shmoo(
            &ModelConfig::paper_prototype().quiet(),
            &DutReceiver::new(Time::from_ps(30.0), Time::from_ps(30.0)),
            &ShmooConfig::standard(5),
        )
    }

    #[test]
    fn window_shrinks_with_stress() {
        let map = run();
        assert_eq!(map.rows.len(), 5);
        let first = map.rows.first().expect("rows exist");
        let last = map.rows.last().expect("rows exist");
        assert!(first.open_fraction > 0.2, "{first:?}");
        assert!(
            last.open_fraction < first.open_fraction,
            "{first:?} vs {last:?}"
        );
    }

    #[test]
    fn stress_margin_query() {
        let map = run();
        // Some margin exists at a modest window requirement…
        let m = map.stress_margin_at(0.1).expect("some stress passes");
        assert!(m >= Voltage::ZERO);
        // …and an impossible requirement yields none.
        assert!(map.stress_margin_at(1.01).is_none());
    }

    #[test]
    fn table_renders() {
        let t = run().to_table();
        assert_eq!(t.row_count(), 5);
        assert!(t.to_string().contains("open_fraction"));
    }
}
