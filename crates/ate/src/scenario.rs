//! Ready-made bus scenarios from the paper's introduction.
//!
//! "This resolution is adequate for some applications such as PCI-Express,
//! where each lane operates as a separate communication channel […]
//! However for other applications, such as HyperTransport 3, the parallel
//! data must be aligned more precisely to a common clock" (paper §1).

use crate::bus::ParallelBus;
use vardelay_units::{BitRate, Time};

/// The two interface classes the paper contrasts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScenarioKind {
    /// Parallel-synchronous: all lanes sampled by one forwarded clock;
    /// needs picosecond channel-to-channel alignment.
    HyperTransport3,
    /// Independent lanes with per-lane clock recovery; tolerates
    /// channel-to-channel skew, so the ATE's 100 ps steps suffice.
    PciExpress,
}

/// A test scenario: a bus plus its alignment requirement.
#[derive(Debug, Clone)]
pub struct BusScenario {
    kind: ScenarioKind,
    bus: ParallelBus,
    alignment_requirement: Time,
}

impl BusScenario {
    /// The HyperTransport-3-like case: 8 channels at 6.4 Gb/s with ±80 ps
    /// fixture skew and a <5 ps alignment requirement.
    pub fn hypertransport3(seed: u64) -> Self {
        BusScenario {
            kind: ScenarioKind::HyperTransport3,
            bus: ParallelBus::with_random_skew(
                8,
                BitRate::from_gbps(6.4),
                Time::from_ps(80.0),
                seed,
            ),
            alignment_requirement: Time::from_ps(5.0),
        }
    }

    /// The PCI-Express-like case: 4 independent lanes at 5 Gb/s where
    /// channel-to-channel skew up to half a native ATE step is acceptable.
    pub fn pci_express(seed: u64) -> Self {
        BusScenario {
            kind: ScenarioKind::PciExpress,
            bus: ParallelBus::with_random_skew(
                4,
                BitRate::from_gbps(5.0),
                Time::from_ps(80.0),
                seed,
            ),
            alignment_requirement: Time::from_ps(50.0),
        }
    }

    /// The scenario class.
    pub fn kind(&self) -> ScenarioKind {
        self.kind
    }

    /// The bus under test.
    pub fn bus(&self) -> &ParallelBus {
        &self.bus
    }

    /// Mutable bus access for running corrections.
    pub fn bus_mut(&mut self) -> &mut ParallelBus {
        &mut self.bus
    }

    /// The channel-to-channel alignment this interface requires.
    pub fn alignment_requirement(&self) -> Time {
        self.alignment_requirement
    }

    /// Whether the ATE's native resolution alone can meet the requirement
    /// (true for PCIe-like lanes, false for parallel-synchronous buses —
    /// the gap the vardelay circuit fills).
    pub fn ate_native_is_sufficient(&self) -> bool {
        // Rounding to the nearest native step leaves up to ±step/2.
        let worst_native = self.bus.channels()[0].timing_resolution() * 0.5;
        worst_native <= self.alignment_requirement
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ht3_needs_the_vardelay_circuit() {
        let s = BusScenario::hypertransport3(1);
        assert_eq!(s.kind(), ScenarioKind::HyperTransport3);
        assert!(!s.ate_native_is_sufficient());
        assert_eq!(s.bus().width(), 8);
    }

    #[test]
    fn pcie_gets_by_with_native_steps() {
        let s = BusScenario::pci_express(1);
        assert!(s.ate_native_is_sufficient());
        assert!((s.alignment_requirement().as_ps() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn scenarios_are_reproducible() {
        let a = BusScenario::hypertransport3(7);
        let b = BusScenario::hypertransport3(7);
        assert_eq!(a.bus().intrinsic_skews(), b.bus().intrinsic_skews());
    }
}
