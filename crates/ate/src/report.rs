//! Report formatting for deskew outcomes.

use crate::deskew::DeskewOutcome;
use vardelay_measure::report::fmt_ps;
use vardelay_measure::Table;

/// Renders a deskew outcome as the before/after table the `repro` binary
/// prints for the paper's Fig. 2.
pub fn deskew_table(outcome: &DeskewOutcome) -> Table {
    let mut table = Table::new(
        "Parallel-bus deskew (paper Fig. 2)",
        &[
            "channel",
            "skew_before_ps",
            "ate_step_ps",
            "vardelay_ps",
            "tap",
            "dac_code",
            "residual_ps",
        ],
    );
    for c in &outcome.corrections {
        table.push_owned_row(vec![
            c.channel.to_string(),
            fmt_ps(c.measured_skew),
            fmt_ps(c.ate_programmed),
            fmt_ps(c.vardelay_setting.predicted_delay),
            c.vardelay_setting.tap.to_string(),
            c.vardelay_setting.dac_code.to_string(),
            fmt_ps(c.residual),
        ]);
    }
    table
}

/// One-line summary: before/after peak-to-peak and verdict.
pub fn deskew_summary(outcome: &DeskewOutcome) -> String {
    format!(
        "bus skew {} pk-pk -> {} pk-pk after deskew ({})",
        outcome.before_peak_to_peak,
        outcome.after_peak_to_peak,
        if outcome.meets_5ps_target() {
            "meets <5 ps target"
        } else {
            "misses <5 ps target"
        }
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::ParallelBus;
    use crate::deskew::DeskewEngine;
    use vardelay_core::ModelConfig;
    use vardelay_units::{BitRate, Time};

    #[test]
    fn table_and_summary_render() {
        let mut bus =
            ParallelBus::with_random_skew(4, BitRate::from_gbps(6.4), Time::from_ps(60.0), 9);
        let outcome = DeskewEngine::new(&ModelConfig::paper_prototype(), 9)
            .run(&mut bus)
            .expect("healthy bus deskews");
        let table = deskew_table(&outcome);
        assert_eq!(table.row_count(), 4);
        let text = table.to_string();
        assert!(text.contains("vardelay_ps"));
        let summary = deskew_summary(&outcome);
        assert!(summary.contains("pk-pk"));
    }
}
