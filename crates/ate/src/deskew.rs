//! The closed-loop deskew application (paper §1, Fig. 2).
//!
//! The ATE's native per-channel delay steps are ~100 ps — far too coarse
//! for parallel-synchronous interfaces needing <5 ps channel-to-channel
//! alignment. The loop measured here is the paper's end application:
//!
//! 1. measure each channel's skew against channel 0;
//! 2. remove the bulk with the tester's 100 ps programmed delays;
//! 3. remove the residue (0–100 ps) with one vardelay circuit per channel,
//!    programmed through its calibration to sub-picosecond resolution.

use crate::bus::ParallelBus;
use vardelay_core::{CombinedDelayCircuit, DelaySetting, ModelConfig, SetDelayError};
use vardelay_measure::mean_delay;
use vardelay_runner::Runner;
use vardelay_siggen::{EdgeStream, GaussianRj, JitterModel, SplitMix64};
use vardelay_units::Time;

/// Error returned when the deskew loop cannot complete.
#[derive(Debug, Clone, PartialEq)]
pub enum DeskewError {
    /// A channel produced no measurable edges (dead driver, open fixture),
    /// so its skew cannot be determined.
    UnmeasurableChannel {
        /// The offending channel index.
        channel: usize,
    },
    /// A required correction exceeded the combined ATE + vardelay range.
    CorrectionOutOfRange {
        /// The offending channel index.
        channel: usize,
        /// The underlying range error.
        source: SetDelayError,
    },
}

impl core::fmt::Display for DeskewError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DeskewError::UnmeasurableChannel { channel } => {
                write!(f, "channel {channel} produced no measurable edges")
            }
            DeskewError::CorrectionOutOfRange { channel, source } => {
                write!(f, "channel {channel} correction failed: {source}")
            }
        }
    }
}

impl std::error::Error for DeskewError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DeskewError::CorrectionOutOfRange { source, .. } => Some(source),
            DeskewError::UnmeasurableChannel { .. } => None,
        }
    }
}

/// The correction applied to one channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelCorrection {
    /// Channel index.
    pub channel: usize,
    /// Skew measured against channel 0 before correction.
    pub measured_skew: Time,
    /// Delay this channel must gain to align with the latest channel.
    pub required_delay: Time,
    /// The part removed by the ATE's quantized programmed delay.
    pub ate_programmed: Time,
    /// The vardelay operating point chosen for the residue.
    pub vardelay_setting: DelaySetting,
    /// Residual misalignment measured after correction.
    pub residual: Time,
}

/// The outcome of one deskew run.
#[derive(Debug, Clone, PartialEq)]
pub struct DeskewOutcome {
    /// Per-channel corrections, channel 0 first.
    pub corrections: Vec<ChannelCorrection>,
    /// Peak-to-peak bus skew before correction.
    pub before_peak_to_peak: Time,
    /// Peak-to-peak bus skew after correction.
    pub after_peak_to_peak: Time,
    /// The corrected output streams (for downstream eye checks).
    pub corrected_streams: Vec<EdgeStream>,
}

impl DeskewOutcome {
    /// Whether the run met the paper's <5 ps channel-to-channel target.
    pub fn meets_5ps_target(&self) -> bool {
        self.after_peak_to_peak < Time::from_ps(5.0)
    }
}

/// The deskew loop: one calibrated vardelay circuit per bus channel.
#[derive(Debug)]
pub struct DeskewEngine {
    config: ModelConfig,
    /// Static per-circuit delay mismatch (manufacturing spread between the
    /// per-channel vardelay boards), 1σ.
    instance_error_sigma: Time,
    seed: u64,
    runner: Runner,
}

impl DeskewEngine {
    /// Creates an engine with the paper-prototype vardelay model and a
    /// 0.8 ps 1σ per-circuit instance mismatch, running on the global
    /// [`Runner`].
    pub fn new(config: &ModelConfig, seed: u64) -> Self {
        DeskewEngine {
            config: config.clone(),
            instance_error_sigma: Time::from_ps(0.8),
            seed,
            runner: Runner::global(),
        }
    }

    /// Overrides the per-circuit instance mismatch, builder style.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative.
    pub fn with_instance_error(mut self, sigma: Time) -> Self {
        assert!(sigma >= Time::ZERO, "instance error must be non-negative");
        self.instance_error_sigma = sigma;
        self
    }

    /// Overrides the runner, builder style — determinism tests force
    /// thread counts through this.
    pub fn with_runner(mut self, runner: Runner) -> Self {
        self.runner = runner;
        self
    }

    /// Runs the loop on `bus`: measures skews, programs the ATE steps and
    /// the per-channel vardelay circuits, and re-measures.
    ///
    /// # Errors
    ///
    /// Returns [`DeskewError::UnmeasurableChannel`] when a channel yields
    /// no pairable edges (dead driver / open fixture), and
    /// [`DeskewError::CorrectionOutOfRange`] if a required correction
    /// exceeds the combined ATE + vardelay range.
    pub fn run(&self, bus: &mut ParallelBus) -> Result<DeskewOutcome, DeskewError> {
        let mut rng = SplitMix64::new(self.seed);

        // 1. Measure the incoming skews against channel 0. Generation and
        // pairing fan out per channel; errors keep channel order, so the
        // first failing channel is reported exactly as in the serial loop.
        let streams = bus.generate_all_with(self.runner);
        let skews: Vec<Time> = self
            .runner
            .par_map(&streams, |i, s| {
                mean_delay(&streams[0], s)
                    .map_err(|_| DeskewError::UnmeasurableChannel { channel: i })
            })
            .into_iter()
            .collect::<Result<_, _>>()?;
        let latest = skews
            .iter()
            .copied()
            .fold(Time::from_s(f64::NEG_INFINITY), Time::max);
        let earliest = skews
            .iter()
            .copied()
            .fold(Time::from_s(f64::INFINITY), Time::min);
        let before_pp = latest - earliest;

        // One calibration serves all channel circuits (same design); each
        // instance then differs by a static mismatch term.
        let mut reference_circuit = CombinedDelayCircuit::new(&self.config, self.seed);
        reference_circuit.calibrate_with(self.runner);

        // 2. Serial prepass in channel order: everything that consumes the
        // engine's sequential RNG (the per-instance mismatch draws) or
        // mutates shared state (programming, circuit settings) stays in
        // the exact order of the serial loop so results are bit-identical
        // at every thread count.
        let chain_rj = self.config.chain_rj(self.config.active_components());
        let mut corrections = Vec::with_capacity(bus.width());
        let mut realized = Vec::with_capacity(bus.width());
        for (i, skew) in skews.iter().enumerate() {
            let required = latest - *skew;
            let resolution = bus.channels()[i].timing_resolution();
            let ate_part = required.floor_to(resolution);
            let residue = required - ate_part;
            let setting = reference_circuit
                .set_delay(residue)
                .map_err(|source| DeskewError::CorrectionOutOfRange { channel: i, source })?;
            let instance_error = self.instance_error_sigma * rng.gaussian();
            realized.push(setting.predicted_delay + instance_error);
            bus.channels_mut()[i].program_delay(ate_part);
            corrections.push(ChannelCorrection {
                channel: i,
                measured_skew: *skew,
                required_delay: required,
                ate_programmed: ate_part,
                vardelay_setting: setting,
                residual: Time::ZERO, // filled in below
            });
        }

        // 3. Heavy per-channel work in parallel: regenerate each corrected
        // stream and apply the chain's RJ from the channel's private,
        // index-derived jitter seed (no draws from the shared `rng`).
        let corrected: Vec<EdgeStream> = self.runner.run(bus.width(), |i| {
            let through = bus.channels()[i].generate().delayed(realized[i]);
            if chain_rj > Time::ZERO {
                GaussianRj::new(chain_rj, self.seed.wrapping_add(0x515 + i as u64)).apply(&through)
            } else {
                through
            }
        });

        // 4. Re-measure the corrected bus.
        let after: Vec<Time> = self.runner.par_map(&corrected, |_, s| {
            mean_delay(&corrected[0], s).expect("corrected channels keep the pattern")
        });
        let hi = after
            .iter()
            .copied()
            .fold(Time::from_s(f64::NEG_INFINITY), Time::max);
        let lo = after
            .iter()
            .copied()
            .fold(Time::from_s(f64::INFINITY), Time::min);
        let mean_after: Time = after.iter().copied().sum::<Time>() / after.len() as f64;
        for (c, a) in corrections.iter_mut().zip(&after) {
            c.residual = *a - mean_after;
        }

        Ok(DeskewOutcome {
            corrections,
            before_peak_to_peak: before_pp,
            after_peak_to_peak: hi - lo,
            corrected_streams: corrected,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vardelay_units::BitRate;

    fn run_once(seed: u64, spread_ps: f64) -> DeskewOutcome {
        let mut bus = ParallelBus::with_random_skew(
            4,
            BitRate::from_gbps(6.4),
            Time::from_ps(spread_ps),
            seed,
        );
        DeskewEngine::new(&ModelConfig::paper_prototype(), seed)
            .run(&mut bus)
            .expect("healthy bus deskews")
    }

    #[test]
    fn deskew_reaches_the_5ps_target() {
        let outcome = run_once(11, 80.0);
        assert!(
            outcome.before_peak_to_peak > Time::from_ps(20.0),
            "bus was already aligned: {}",
            outcome.before_peak_to_peak
        );
        assert!(
            outcome.meets_5ps_target(),
            "after {}",
            outcome.after_peak_to_peak
        );
    }

    #[test]
    fn ate_alone_cannot_reach_the_target() {
        // Quantizing the required delays to 100 ps leaves up to ±50 ps —
        // this is the paper's motivation in one assertion.
        let bus = ParallelBus::with_random_skew(4, BitRate::from_gbps(6.4), Time::from_ps(80.0), 3);
        let streams = bus.generate_all();
        let skews: Vec<Time> = streams
            .iter()
            .map(|s| mean_delay(&streams[0], s).unwrap())
            .collect();
        let latest = skews.iter().copied().fold(Time::ZERO, Time::max);
        let residues: Vec<f64> = skews
            .iter()
            .map(|&s| {
                let required = latest - s;
                (required - required.round_to(Time::from_ps(100.0))).as_ps()
            })
            .collect();
        let pp = residues.iter().cloned().fold(f64::MIN, f64::max)
            - residues.iter().cloned().fold(f64::MAX, f64::min);
        assert!(pp > 5.0, "ATE-only residual {pp} ps");
    }

    #[test]
    fn corrections_use_only_positive_delays() {
        let outcome = run_once(5, 80.0);
        for c in &outcome.corrections {
            assert!(c.required_delay >= Time::ZERO, "{c:?}");
            assert!(c.ate_programmed >= Time::ZERO);
        }
    }

    #[test]
    fn several_seeds_all_converge() {
        for seed in [1, 2, 3, 4, 5] {
            let outcome = run_once(seed, 80.0);
            assert!(
                outcome.after_peak_to_peak < Time::from_ps(6.0),
                "seed {seed}: after {}",
                outcome.after_peak_to_peak
            );
        }
    }

    #[test]
    fn dead_channel_is_reported_not_panicked() {
        use crate::channel::AteChannel;
        use vardelay_siggen::BitPattern;
        // Channel 1 drives a constant pattern: zero edges, unmeasurable.
        let good = BitPattern::prbs7(1, 254);
        let dead = BitPattern::from_str("0000").unwrap().repeat(64);
        let mut bus = ParallelBus::new(vec![
            AteChannel::sb6g(0, good.clone(), 1),
            AteChannel::sb6g(1, dead, 2),
            AteChannel::sb6g(2, good, 3),
        ]);
        let err = DeskewEngine::new(&ModelConfig::paper_prototype(), 4)
            .run(&mut bus)
            .unwrap_err();
        assert_eq!(err, DeskewError::UnmeasurableChannel { channel: 1 });
        assert!(err.to_string().contains("channel 1"));
    }

    #[test]
    fn wider_buses_also_converge() {
        let mut bus =
            ParallelBus::with_random_skew(8, BitRate::from_gbps(6.4), Time::from_ps(80.0), 21);
        let outcome = DeskewEngine::new(&ModelConfig::paper_prototype(), 21)
            .run(&mut bus)
            .expect("healthy bus deskews");
        assert!(
            outcome.after_peak_to_peak < Time::from_ps(8.0),
            "after {}",
            outcome.after_peak_to_peak
        );
        assert_eq!(outcome.corrections.len(), 8);
    }
}
