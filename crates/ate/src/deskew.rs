//! The closed-loop deskew application (paper §1, Fig. 2).
//!
//! The ATE's native per-channel delay steps are ~100 ps — far too coarse
//! for parallel-synchronous interfaces needing <5 ps channel-to-channel
//! alignment. The loop measured here is the paper's end application:
//!
//! 1. measure each channel's skew against channel 0;
//! 2. remove the bulk with the tester's 100 ps programmed delays;
//! 3. remove the residue (0–100 ps) with one vardelay circuit per channel,
//!    programmed through its calibration to sub-picosecond resolution.

use crate::bus::ParallelBus;
use std::sync::Arc;
use vardelay_core::{CombinedDelayCircuit, DelaySetting, ModelConfig, SetDelayError};
use vardelay_measure::mean_delay;
use vardelay_obs as obs;
use vardelay_runner::Runner;
use vardelay_siggen::{EdgeStream, GaussianRj, JitterModel, SplitMix64};
use vardelay_units::Time;

/// Error returned when the deskew loop cannot complete.
#[derive(Debug, Clone, PartialEq)]
pub enum DeskewError {
    /// A channel produced no measurable edges (dead driver, open fixture),
    /// so its skew cannot be determined.
    UnmeasurableChannel {
        /// The offending channel index.
        channel: usize,
    },
    /// A required correction exceeded the combined ATE + vardelay range.
    CorrectionOutOfRange {
        /// The offending channel index.
        channel: usize,
        /// The underlying range error.
        source: SetDelayError,
    },
    /// Degraded mode quarantined so many channels that no meaningful
    /// alignment remains (fewer than two measurable channels).
    TooFewHealthyChannels {
        /// Channels that survived quarantine.
        healthy: usize,
    },
}

impl core::fmt::Display for DeskewError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DeskewError::UnmeasurableChannel { channel } => {
                write!(f, "channel {channel} produced no measurable edges")
            }
            DeskewError::CorrectionOutOfRange { channel, source } => {
                write!(f, "channel {channel} correction failed: {source}")
            }
            DeskewError::TooFewHealthyChannels { healthy } => {
                write!(
                    f,
                    "only {healthy} healthy channel(s) remain; deskew needs at least 2"
                )
            }
        }
    }
}

impl std::error::Error for DeskewError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DeskewError::CorrectionOutOfRange { source, .. } => Some(source),
            DeskewError::UnmeasurableChannel { .. } | DeskewError::TooFewHealthyChannels { .. } => {
                None
            }
        }
    }
}

/// The correction applied to one channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelCorrection {
    /// Channel index.
    pub channel: usize,
    /// Skew measured against channel 0 before correction.
    pub measured_skew: Time,
    /// Delay this channel must gain to align with the latest channel.
    pub required_delay: Time,
    /// The part removed by the ATE's quantized programmed delay.
    pub ate_programmed: Time,
    /// The vardelay operating point chosen for the residue.
    pub vardelay_setting: DelaySetting,
    /// Residual misalignment measured after correction.
    pub residual: Time,
}

/// The outcome of one deskew run.
#[derive(Debug, Clone, PartialEq)]
pub struct DeskewOutcome {
    /// Per-channel corrections, channel 0 first.
    pub corrections: Vec<ChannelCorrection>,
    /// Peak-to-peak bus skew before correction.
    pub before_peak_to_peak: Time,
    /// Peak-to-peak bus skew after correction.
    pub after_peak_to_peak: Time,
    /// The corrected output streams (for downstream eye checks).
    pub corrected_streams: Vec<EdgeStream>,
}

impl DeskewOutcome {
    /// Whether the run met the paper's <5 ps channel-to-channel target.
    pub fn meets_5ps_target(&self) -> bool {
        self.after_peak_to_peak < Time::from_ps(5.0)
    }
}

/// A deterministic measurement-fault predicate: `(channel, attempt)` →
/// "this measurement attempt fails" (attempts are 1-based).
///
/// Injected by the fault campaigns (see `vardelay-faults`'s
/// `TransientFaults`, whose `fails` method has exactly this shape) so the
/// degraded loop's retry/quarantine path can be exercised without real
/// broken hardware. Must be a pure function of its arguments — the
/// determinism contract (DESIGN.md §8) extends to faults.
pub type MeasurementFaultHook = Arc<dyn Fn(usize, u32) -> bool + Send + Sync>;

/// Retry discipline for degraded-mode measurements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradedPolicy {
    /// Measurement attempts per channel before quarantine (≥ 1).
    pub max_measure_attempts: u32,
    /// Base of the simulated exponential backoff between attempts, in
    /// microseconds. The backoff is *recorded* (obs histogram
    /// `deskew.backoff_us`) but never slept, so retries change no
    /// experiment bytes.
    pub backoff_base_us: u64,
}

impl Default for DegradedPolicy {
    /// Three attempts with a 100 µs simulated backoff base.
    fn default() -> Self {
        DegradedPolicy {
            max_measure_attempts: 3,
            backoff_base_us: 100,
        }
    }
}

impl DegradedPolicy {
    /// The simulated backoff before retry `attempt` (1-based), doubling
    /// per attempt with a shift cap.
    pub fn backoff_us(&self, attempt: u32) -> u64 {
        self.backoff_base_us << attempt.saturating_sub(1).min(16)
    }
}

/// A channel the degraded loop refused to correct, and why.
#[derive(Debug, Clone, PartialEq)]
pub struct QuarantinedChannel {
    /// Channel index.
    pub channel: usize,
    /// Measurement attempts spent on the channel before it was condemned
    /// (quarantine can also happen later, at correction time, after the
    /// measurement itself succeeded).
    pub attempts: u32,
    /// The error that condemned the channel.
    pub reason: DeskewError,
}

/// The outcome of a degraded-mode deskew run.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradedOutcome {
    /// Corrections applied to the healthy channels, in channel order.
    pub corrections: Vec<ChannelCorrection>,
    /// Channels excluded from alignment, in channel order.
    pub quarantined: Vec<QuarantinedChannel>,
    /// The channel every skew was measured against (the first measurable
    /// channel).
    pub reference_channel: usize,
    /// Peak-to-peak skew across the healthy channels before correction.
    pub before_peak_to_peak: Time,
    /// Peak-to-peak skew across the healthy channels after correction.
    pub after_peak_to_peak: Time,
    /// Corrected streams, `None` for quarantined channels.
    pub corrected_streams: Vec<Option<EdgeStream>>,
}

impl DegradedOutcome {
    /// Number of channels that were measured and corrected.
    pub fn healthy_count(&self) -> usize {
        self.corrections.len()
    }

    /// The quarantined channel indices, ascending.
    pub fn quarantined_channels(&self) -> Vec<usize> {
        self.quarantined.iter().map(|q| q.channel).collect()
    }

    /// Whether the *healthy* channels met the paper's <5 ps target.
    pub fn meets_5ps_target(&self) -> bool {
        self.after_peak_to_peak < Time::from_ps(5.0)
    }
}

/// The deskew loop: one calibrated vardelay circuit per bus channel.
pub struct DeskewEngine {
    config: ModelConfig,
    /// Static per-circuit delay mismatch (manufacturing spread between the
    /// per-channel vardelay boards), 1σ.
    instance_error_sigma: Time,
    seed: u64,
    runner: Runner,
    measurement_faults: Option<MeasurementFaultHook>,
}

impl core::fmt::Debug for DeskewEngine {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("DeskewEngine")
            .field("config", &self.config)
            .field("instance_error_sigma", &self.instance_error_sigma)
            .field("seed", &self.seed)
            .field("runner", &self.runner)
            .field(
                "measurement_faults",
                &self.measurement_faults.as_ref().map(|_| "<hook>"),
            )
            .finish()
    }
}

impl DeskewEngine {
    /// Creates an engine with the paper-prototype vardelay model and a
    /// 0.8 ps 1σ per-circuit instance mismatch, running on the global
    /// [`Runner`].
    pub fn new(config: &ModelConfig, seed: u64) -> Self {
        DeskewEngine {
            config: config.clone(),
            instance_error_sigma: Time::from_ps(0.8),
            seed,
            runner: Runner::global(),
            measurement_faults: None,
        }
    }

    /// Installs a deterministic measurement-fault predicate, builder
    /// style — consulted by [`run_degraded`](Self::run_degraded) before
    /// every skew-measurement attempt. Fault campaigns wire
    /// `vardelay-faults`' `TransientFaults::fails` through this.
    pub fn with_measurement_faults(mut self, hook: MeasurementFaultHook) -> Self {
        self.measurement_faults = Some(hook);
        self
    }

    /// Overrides the per-circuit instance mismatch, builder style.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative.
    pub fn with_instance_error(mut self, sigma: Time) -> Self {
        assert!(sigma >= Time::ZERO, "instance error must be non-negative");
        self.instance_error_sigma = sigma;
        self
    }

    /// Overrides the runner, builder style — determinism tests force
    /// thread counts through this.
    pub fn with_runner(mut self, runner: Runner) -> Self {
        self.runner = runner;
        self
    }

    /// Runs the loop on `bus`: measures skews, programs the ATE steps and
    /// the per-channel vardelay circuits, and re-measures.
    ///
    /// # Errors
    ///
    /// Returns [`DeskewError::UnmeasurableChannel`] when a channel yields
    /// no pairable edges (dead driver / open fixture), and
    /// [`DeskewError::CorrectionOutOfRange`] if a required correction
    /// exceeds the combined ATE + vardelay range.
    pub fn run(&self, bus: &mut ParallelBus) -> Result<DeskewOutcome, DeskewError> {
        let mut rng = SplitMix64::new(self.seed);

        // 1. Measure the incoming skews against channel 0. Generation and
        // pairing fan out per channel; errors keep channel order, so the
        // first failing channel is reported exactly as in the serial loop.
        let streams = bus.generate_all_with(self.runner);
        let skews: Vec<Time> = self
            .runner
            .par_map(&streams, |i, s| {
                mean_delay(&streams[0], s)
                    .map_err(|_| DeskewError::UnmeasurableChannel { channel: i })
            })
            .into_iter()
            .collect::<Result<_, _>>()?;
        let latest = skews
            .iter()
            .copied()
            .fold(Time::from_s(f64::NEG_INFINITY), Time::max);
        let earliest = skews
            .iter()
            .copied()
            .fold(Time::from_s(f64::INFINITY), Time::min);
        let before_pp = latest - earliest;

        // One calibration serves all channel circuits (same design); each
        // instance then differs by a static mismatch term.
        let mut reference_circuit = CombinedDelayCircuit::new(&self.config, self.seed);
        reference_circuit.calibrate_with(self.runner);

        // 2. Serial prepass in channel order: everything that consumes the
        // engine's sequential RNG (the per-instance mismatch draws) or
        // mutates shared state (programming, circuit settings) stays in
        // the exact order of the serial loop so results are bit-identical
        // at every thread count.
        let chain_rj = self.config.chain_rj(self.config.active_components());
        let mut corrections = Vec::with_capacity(bus.width());
        let mut realized = Vec::with_capacity(bus.width());
        for (i, skew) in skews.iter().enumerate() {
            let required = latest - *skew;
            let resolution = bus.channels()[i].timing_resolution();
            let ate_part = required.floor_to(resolution);
            let residue = required - ate_part;
            let setting = reference_circuit
                .set_delay(residue)
                .map_err(|source| DeskewError::CorrectionOutOfRange { channel: i, source })?;
            let instance_error = self.instance_error_sigma * rng.gaussian();
            realized.push(setting.predicted_delay + instance_error);
            bus.channels_mut()[i].program_delay(ate_part);
            corrections.push(ChannelCorrection {
                channel: i,
                measured_skew: *skew,
                required_delay: required,
                ate_programmed: ate_part,
                vardelay_setting: setting,
                residual: Time::ZERO, // filled in below
            });
        }

        // 3. Heavy per-channel work in parallel: regenerate each corrected
        // stream and apply the chain's RJ from the channel's private,
        // index-derived jitter seed (no draws from the shared `rng`).
        let corrected: Vec<EdgeStream> = self.runner.run(bus.width(), |i| {
            let through = bus.channels()[i].generate().delayed(realized[i]);
            if chain_rj > Time::ZERO {
                GaussianRj::new(chain_rj, self.seed.wrapping_add(0x515 + i as u64)).apply(&through)
            } else {
                through
            }
        });

        // 4. Re-measure the corrected bus.
        let after: Vec<Time> = self.runner.par_map(&corrected, |_, s| {
            mean_delay(&corrected[0], s).expect("corrected channels keep the pattern")
        });
        let hi = after
            .iter()
            .copied()
            .fold(Time::from_s(f64::NEG_INFINITY), Time::max);
        let lo = after
            .iter()
            .copied()
            .fold(Time::from_s(f64::INFINITY), Time::min);
        let mean_after: Time = after.iter().copied().sum::<Time>() / after.len() as f64;
        for (c, a) in corrections.iter_mut().zip(&after) {
            c.residual = *a - mean_after;
        }

        Ok(DeskewOutcome {
            corrections,
            before_peak_to_peak: before_pp,
            after_peak_to_peak: hi - lo,
            corrected_streams: corrected,
        })
    }

    /// Runs the loop in **degraded mode**: channels that cannot be
    /// measured (within `policy.max_measure_attempts` deterministic
    /// retries) or whose correction is out of range are *quarantined* and
    /// reported instead of aborting the whole bus, and the healthy
    /// remainder is aligned as usual.
    ///
    /// The skew of each channel is measured against the first measurable
    /// channel (the reference). Retry backoff is simulated — recorded in
    /// the `deskew.backoff_us` histogram, never slept — so a degraded run
    /// is as reproducible as a healthy one; the per-instance mismatch RNG
    /// is drawn for every channel in channel order, quarantined or not,
    /// so the healthy channels' corrections do not depend on *which*
    /// channels failed.
    ///
    /// # Errors
    ///
    /// Returns [`DeskewError::TooFewHealthyChannels`] when fewer than two
    /// channels survive quarantine; per-channel failures are returned in
    /// [`DegradedOutcome::quarantined`], not as errors.
    pub fn run_degraded(
        &self,
        bus: &mut ParallelBus,
        policy: DegradedPolicy,
    ) -> Result<DegradedOutcome, DeskewError> {
        let max_attempts = policy.max_measure_attempts.max(1);
        let mut rng = SplitMix64::new(self.seed);
        let width = bus.width();
        let streams = bus.generate_all_with(self.runner);

        // 1. Measure each channel against the first measurable one, with
        // deterministic bounded retries. This pass is serial by design:
        // the reference is discovered on the fly, the per-attempt fault
        // hook must see a stable attempt sequence, and pairing a few edge
        // streams is cheap next to generating them (done in parallel
        // above).
        let mut reference: Option<usize> = None;
        let mut skews: Vec<Option<Time>> = Vec::with_capacity(width);
        let mut quarantined: Vec<QuarantinedChannel> = Vec::new();
        let mut attempts_spent = vec![0u32; width];
        for (i, stream) in streams.iter().enumerate() {
            let reference_stream = &streams[reference.unwrap_or(i)];
            let mut measured = None;
            let mut attempt = 0u32;
            while attempt < max_attempts {
                attempt += 1;
                let injected = self
                    .measurement_faults
                    .as_ref()
                    .is_some_and(|fails| fails(i, attempt));
                let outcome = if injected {
                    None
                } else {
                    mean_delay(reference_stream, stream).ok()
                };
                match outcome {
                    Some(skew) => {
                        measured = Some(skew);
                        break;
                    }
                    None if attempt < max_attempts && obs::enabled() => {
                        obs::counter("deskew.retries").incr();
                        obs::histogram("deskew.backoff_us").record(policy.backoff_us(attempt));
                    }
                    None => {}
                }
            }
            attempts_spent[i] = attempt;
            if obs::enabled() {
                obs::histogram("deskew.measure_attempts").record(u64::from(attempt));
            }
            match measured {
                Some(skew) => {
                    if reference.is_none() {
                        reference = Some(i);
                    }
                    skews.push(Some(skew));
                }
                None => {
                    if obs::enabled() {
                        obs::counter("deskew.quarantined").incr();
                    }
                    quarantined.push(QuarantinedChannel {
                        channel: i,
                        attempts: attempt,
                        reason: DeskewError::UnmeasurableChannel { channel: i },
                    });
                    skews.push(None);
                }
            }
        }

        let healthy_skews: Vec<Time> = skews.iter().copied().flatten().collect();
        if healthy_skews.len() < 2 {
            return Err(DeskewError::TooFewHealthyChannels {
                healthy: healthy_skews.len(),
            });
        }
        let reference_channel = reference.expect("at least two healthy channels");
        let latest = healthy_skews
            .iter()
            .copied()
            .fold(Time::from_s(f64::NEG_INFINITY), Time::max);
        let earliest = healthy_skews
            .iter()
            .copied()
            .fold(Time::from_s(f64::INFINITY), Time::min);
        let before_pp = latest - earliest;

        let mut reference_circuit = CombinedDelayCircuit::new(&self.config, self.seed);
        reference_circuit.calibrate_with(self.runner);

        // 2. Serial prepass, as in `run`: the instance-mismatch RNG is
        // drawn for every channel (even quarantined ones) so the draw
        // positions never depend on the fault pattern.
        let chain_rj = self.config.chain_rj(self.config.active_components());
        let mut corrections = Vec::new();
        let mut realized: Vec<Option<Time>> = Vec::with_capacity(width);
        for i in 0..width {
            let instance_error = self.instance_error_sigma * rng.gaussian();
            let Some(skew) = skews[i] else {
                realized.push(None);
                continue;
            };
            let required = latest - skew;
            let resolution = bus.channels()[i].timing_resolution();
            let ate_part = required.floor_to(resolution);
            let residue = required - ate_part;
            match reference_circuit.set_delay(residue) {
                Ok(setting) => {
                    realized.push(Some(setting.predicted_delay + instance_error));
                    bus.channels_mut()[i].program_delay(ate_part);
                    corrections.push(ChannelCorrection {
                        channel: i,
                        measured_skew: skew,
                        required_delay: required,
                        ate_programmed: ate_part,
                        vardelay_setting: setting,
                        residual: Time::ZERO, // filled in below
                    });
                }
                Err(source) => {
                    if obs::enabled() {
                        obs::counter("deskew.quarantined").incr();
                    }
                    quarantined.push(QuarantinedChannel {
                        channel: i,
                        attempts: attempts_spent[i],
                        reason: DeskewError::CorrectionOutOfRange { channel: i, source },
                    });
                    realized.push(None);
                }
            }
        }
        quarantined.sort_by_key(|q| q.channel);
        if corrections.len() < 2 {
            return Err(DeskewError::TooFewHealthyChannels {
                healthy: corrections.len(),
            });
        }

        // 3. Regenerate the corrected healthy streams in parallel (same
        // private jitter-seed scheme as `run`).
        let corrected: Vec<Option<EdgeStream>> = self.runner.run(width, |i| {
            realized[i].map(|delay| {
                let through = bus.channels()[i].generate().delayed(delay);
                if chain_rj > Time::ZERO {
                    GaussianRj::new(chain_rj, self.seed.wrapping_add(0x515 + i as u64))
                        .apply(&through)
                } else {
                    through
                }
            })
        });

        // 4. Re-measure the healthy channels against the first of them.
        let healthy_streams: Vec<&EdgeStream> = corrected.iter().flatten().collect();
        let after: Vec<Time> = self.runner.par_map(&healthy_streams, |_, s| {
            mean_delay(healthy_streams[0], s).expect("corrected channels keep the pattern")
        });
        let hi = after
            .iter()
            .copied()
            .fold(Time::from_s(f64::NEG_INFINITY), Time::max);
        let lo = after
            .iter()
            .copied()
            .fold(Time::from_s(f64::INFINITY), Time::min);
        let mean_after: Time = after.iter().copied().sum::<Time>() / after.len() as f64;
        for (c, a) in corrections.iter_mut().zip(&after) {
            c.residual = *a - mean_after;
        }

        Ok(DegradedOutcome {
            corrections,
            quarantined,
            reference_channel,
            before_peak_to_peak: before_pp,
            after_peak_to_peak: hi - lo,
            corrected_streams: corrected,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vardelay_units::BitRate;

    fn run_once(seed: u64, spread_ps: f64) -> DeskewOutcome {
        let mut bus = ParallelBus::with_random_skew(
            4,
            BitRate::from_gbps(6.4),
            Time::from_ps(spread_ps),
            seed,
        );
        DeskewEngine::new(&ModelConfig::paper_prototype(), seed)
            .run(&mut bus)
            .expect("healthy bus deskews")
    }

    #[test]
    fn deskew_reaches_the_5ps_target() {
        let outcome = run_once(11, 80.0);
        assert!(
            outcome.before_peak_to_peak > Time::from_ps(20.0),
            "bus was already aligned: {}",
            outcome.before_peak_to_peak
        );
        assert!(
            outcome.meets_5ps_target(),
            "after {}",
            outcome.after_peak_to_peak
        );
    }

    #[test]
    fn ate_alone_cannot_reach_the_target() {
        // Quantizing the required delays to 100 ps leaves up to ±50 ps —
        // this is the paper's motivation in one assertion.
        let bus = ParallelBus::with_random_skew(4, BitRate::from_gbps(6.4), Time::from_ps(80.0), 3);
        let streams = bus.generate_all();
        let skews: Vec<Time> = streams
            .iter()
            .map(|s| mean_delay(&streams[0], s).unwrap())
            .collect();
        let latest = skews.iter().copied().fold(Time::ZERO, Time::max);
        let residues: Vec<f64> = skews
            .iter()
            .map(|&s| {
                let required = latest - s;
                (required - required.round_to(Time::from_ps(100.0))).as_ps()
            })
            .collect();
        let pp = residues.iter().cloned().fold(f64::MIN, f64::max)
            - residues.iter().cloned().fold(f64::MAX, f64::min);
        assert!(pp > 5.0, "ATE-only residual {pp} ps");
    }

    #[test]
    fn corrections_use_only_positive_delays() {
        let outcome = run_once(5, 80.0);
        for c in &outcome.corrections {
            assert!(c.required_delay >= Time::ZERO, "{c:?}");
            assert!(c.ate_programmed >= Time::ZERO);
        }
    }

    #[test]
    fn several_seeds_all_converge() {
        for seed in [1, 2, 3, 4, 5] {
            let outcome = run_once(seed, 80.0);
            assert!(
                outcome.after_peak_to_peak < Time::from_ps(6.0),
                "seed {seed}: after {}",
                outcome.after_peak_to_peak
            );
        }
    }

    #[test]
    fn dead_channel_is_reported_not_panicked() {
        use crate::channel::AteChannel;
        use vardelay_siggen::BitPattern;
        // Channel 1 drives a constant pattern: zero edges, unmeasurable.
        let good = BitPattern::prbs7(1, 254);
        let dead = BitPattern::from_str("0000").unwrap().repeat(64);
        let mut bus = ParallelBus::new(vec![
            AteChannel::sb6g(0, good.clone(), 1),
            AteChannel::sb6g(1, dead, 2),
            AteChannel::sb6g(2, good, 3),
        ]);
        let err = DeskewEngine::new(&ModelConfig::paper_prototype(), 4)
            .run(&mut bus)
            .unwrap_err();
        assert_eq!(err, DeskewError::UnmeasurableChannel { channel: 1 });
        assert!(err.to_string().contains("channel 1"));
    }

    /// A hook that kills the given channels outright (never measurable).
    fn dead_channels_hook(dead: &[usize]) -> super::MeasurementFaultHook {
        let dead = dead.to_vec();
        Arc::new(move |channel, _attempt| dead.contains(&channel))
    }

    #[test]
    fn degraded_without_faults_matches_the_plain_loop() {
        let seed = 11;
        let mut bus_a =
            ParallelBus::with_random_skew(4, BitRate::from_gbps(6.4), Time::from_ps(80.0), seed);
        let mut bus_b =
            ParallelBus::with_random_skew(4, BitRate::from_gbps(6.4), Time::from_ps(80.0), seed);
        let engine = DeskewEngine::new(&ModelConfig::paper_prototype(), seed);
        let plain = engine.run(&mut bus_a).expect("healthy bus deskews");
        let degraded = engine
            .run_degraded(&mut bus_b, DegradedPolicy::default())
            .expect("healthy bus deskews in degraded mode too");
        assert!(degraded.quarantined.is_empty());
        assert_eq!(degraded.reference_channel, 0);
        assert_eq!(degraded.corrections, plain.corrections);
        assert_eq!(degraded.after_peak_to_peak, plain.after_peak_to_peak);
        assert_eq!(
            degraded.corrected_streams,
            plain
                .corrected_streams
                .into_iter()
                .map(Some)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn ht3_with_two_dead_channels_aligns_the_healthy_six() {
        // The ISSUE acceptance scenario: an 8-channel HyperTransport-3
        // bus with two injected dead drivers must still align the six
        // healthy channels to <5 ps and report exactly the dead pair.
        let mut scenario = crate::scenario::BusScenario::hypertransport3(21);
        let outcome = DeskewEngine::new(&ModelConfig::paper_prototype(), 21)
            .with_measurement_faults(dead_channels_hook(&[2, 5]))
            .run_degraded(scenario.bus_mut(), DegradedPolicy::default())
            .expect("six healthy channels remain");
        assert_eq!(outcome.quarantined_channels(), vec![2, 5]);
        assert_eq!(outcome.healthy_count(), 6);
        for q in &outcome.quarantined {
            assert_eq!(q.attempts, DegradedPolicy::default().max_measure_attempts);
            assert!(matches!(
                q.reason,
                DeskewError::UnmeasurableChannel { channel } if channel == q.channel
            ));
        }
        assert!(
            outcome.meets_5ps_target(),
            "healthy channels after {}",
            outcome.after_peak_to_peak
        );
        assert!(outcome.corrected_streams[2].is_none());
        assert!(outcome.corrected_streams[5].is_none());
        assert_eq!(outcome.reference_channel, 0);
    }

    #[test]
    fn weak_channel_recovers_within_the_retry_budget() {
        // Channel 1 fails its first two attempts, then measures fine —
        // the retry loop must absorb it without quarantine.
        let hook: super::MeasurementFaultHook =
            Arc::new(|channel, attempt| channel == 1 && attempt <= 2);
        let mut bus =
            ParallelBus::with_random_skew(4, BitRate::from_gbps(6.4), Time::from_ps(80.0), 11);
        let outcome = DeskewEngine::new(&ModelConfig::paper_prototype(), 11)
            .with_measurement_faults(hook)
            .run_degraded(&mut bus, DegradedPolicy::default())
            .expect("weak channel recovers");
        assert!(outcome.quarantined.is_empty());
        assert_eq!(outcome.healthy_count(), 4);
        assert!(outcome.meets_5ps_target());
    }

    #[test]
    fn dead_reference_candidate_falls_to_the_next_channel() {
        // Channel 0 dead: the reference moves to channel 1 and the rest
        // still aligns.
        let mut bus =
            ParallelBus::with_random_skew(4, BitRate::from_gbps(6.4), Time::from_ps(80.0), 7);
        let outcome = DeskewEngine::new(&ModelConfig::paper_prototype(), 7)
            .with_measurement_faults(dead_channels_hook(&[0]))
            .run_degraded(&mut bus, DegradedPolicy::default())
            .expect("three healthy channels remain");
        assert_eq!(outcome.reference_channel, 1);
        assert_eq!(outcome.quarantined_channels(), vec![0]);
        assert!(outcome.meets_5ps_target());
    }

    #[test]
    fn too_few_healthy_channels_is_an_error() {
        let mut bus =
            ParallelBus::with_random_skew(4, BitRate::from_gbps(6.4), Time::from_ps(80.0), 9);
        let err = DeskewEngine::new(&ModelConfig::paper_prototype(), 9)
            .with_measurement_faults(dead_channels_hook(&[0, 1, 2]))
            .run_degraded(&mut bus, DegradedPolicy::default())
            .unwrap_err();
        assert_eq!(err, DeskewError::TooFewHealthyChannels { healthy: 1 });
        assert!(err.to_string().contains("at least 2"));
        use std::error::Error;
        assert!(err.source().is_none());
    }

    #[test]
    fn degraded_outcome_is_identical_at_every_thread_count() {
        let reference = {
            let mut bus = crate::scenario::BusScenario::hypertransport3(33);
            DeskewEngine::new(&ModelConfig::paper_prototype(), 33)
                .with_measurement_faults(dead_channels_hook(&[4]))
                .with_runner(Runner::serial())
                .run_degraded(bus.bus_mut(), DegradedPolicy::default())
                .expect("deskews")
        };
        for threads in [2, 4, 8] {
            let mut bus = crate::scenario::BusScenario::hypertransport3(33);
            let outcome = DeskewEngine::new(&ModelConfig::paper_prototype(), 33)
                .with_measurement_faults(dead_channels_hook(&[4]))
                .with_runner(Runner::new(threads))
                .run_degraded(bus.bus_mut(), DegradedPolicy::default())
                .expect("deskews");
            assert_eq!(outcome, reference, "threads={threads}");
        }
    }

    #[test]
    fn backoff_schedule_doubles_and_caps() {
        let policy = DegradedPolicy::default();
        assert_eq!(policy.backoff_us(1), 100);
        assert_eq!(policy.backoff_us(2), 200);
        assert_eq!(policy.backoff_us(3), 400);
        assert_eq!(policy.backoff_us(40), 100 << 16);
    }

    #[test]
    fn correction_errors_chain_to_their_set_delay_source() {
        // Satellite pin: DeskewError::CorrectionOutOfRange must expose
        // the underlying SetDelayError through Error::source().
        use std::error::Error;
        use vardelay_core::SetDelayError;
        let source = SetDelayError::OutOfRange {
            requested: Time::from_ps(500.0),
            min: Time::ZERO,
            max: Time::from_ps(150.0),
        };
        let err = DeskewError::CorrectionOutOfRange {
            channel: 3,
            source: source.clone(),
        };
        let chained = err
            .source()
            .expect("out-of-range corrections carry a source")
            .downcast_ref::<SetDelayError>()
            .expect("source is the SetDelayError");
        assert_eq!(chained, &source);
        assert!(DeskewError::UnmeasurableChannel { channel: 0 }
            .source()
            .is_none());
    }

    #[test]
    fn wider_buses_also_converge() {
        let mut bus =
            ParallelBus::with_random_skew(8, BitRate::from_gbps(6.4), Time::from_ps(80.0), 21);
        let outcome = DeskewEngine::new(&ModelConfig::paper_prototype(), 21)
            .run(&mut bus)
            .expect("healthy bus deskews");
        assert!(
            outcome.after_peak_to_peak < Time::from_ps(8.0),
            "after {}",
            outcome.after_peak_to_peak
        );
        assert_eq!(outcome.corrections.len(), 8);
    }
}
