//! A single ATE pin-electronics channel.

use vardelay_siggen::{BitPattern, EdgeStream, GaussianRj, JitterModel};
use vardelay_units::{BitRate, Time};

/// One high-speed ATE source channel.
///
/// A channel renders its pattern at the programmed rate, displaced by its
/// *intrinsic skew* (cable/fixture/pin-electronics mismatch — the error
/// deskew must remove) plus its *programmed delay*, which the tester can
/// only set in multiples of its timing resolution (~100 ps on the SB6G
/// sources the paper uses).
///
/// # Examples
///
/// ```
/// use vardelay_ate::AteChannel;
/// use vardelay_siggen::BitPattern;
/// use vardelay_units::Time;
///
/// let mut ch = AteChannel::sb6g(0, BitPattern::prbs7(1, 127), 42)
///     .with_intrinsic_skew(Time::from_ps(63.0));
/// // Programmed delays quantize to the 100 ps native resolution.
/// let applied = ch.program_delay(Time::from_ps(273.0));
/// assert!((applied.as_ps() - 300.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct AteChannel {
    index: usize,
    rate: BitRate,
    pattern: BitPattern,
    intrinsic_skew: Time,
    programmed_delay: Time,
    timing_resolution: Time,
    rj_sigma: Time,
    seed: u64,
}

impl AteChannel {
    /// Creates a channel with explicit electrical parameters.
    ///
    /// # Panics
    ///
    /// Panics if the timing resolution is not positive or the RJ is
    /// negative.
    pub fn new(
        index: usize,
        rate: BitRate,
        pattern: BitPattern,
        timing_resolution: Time,
        rj_sigma: Time,
        seed: u64,
    ) -> Self {
        assert!(
            timing_resolution > Time::ZERO,
            "timing resolution must be positive"
        );
        assert!(rj_sigma >= Time::ZERO, "jitter must be non-negative");
        AteChannel {
            index,
            rate,
            pattern,
            intrinsic_skew: Time::ZERO,
            programmed_delay: Time::ZERO,
            timing_resolution,
            rj_sigma,
            seed,
        }
    }

    /// An SB6G-style source on the Teradyne UltraFlex: 6.4 Gb/s, ~100 ps
    /// native deskew resolution, ~1.2 ps RMS source jitter.
    pub fn sb6g(index: usize, pattern: BitPattern, seed: u64) -> Self {
        Self::new(
            index,
            BitRate::from_gbps(6.4),
            pattern,
            Time::from_ps(100.0),
            Time::from_ps(1.2),
            seed,
        )
    }

    /// Channel index within its bus.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Data rate.
    pub fn rate(&self) -> BitRate {
        self.rate
    }

    /// The static skew this channel carries before any correction.
    pub fn intrinsic_skew(&self) -> Time {
        self.intrinsic_skew
    }

    /// Sets the intrinsic skew, builder style.
    pub fn with_intrinsic_skew(mut self, skew: Time) -> Self {
        self.intrinsic_skew = skew;
        self
    }

    /// Sets the data rate, builder style.
    pub fn with_rate(mut self, rate: BitRate) -> Self {
        self.rate = rate;
        self
    }

    /// The currently programmed (already quantized) delay.
    pub fn programmed_delay(&self) -> Time {
        self.programmed_delay
    }

    /// The tester's native timing step.
    pub fn timing_resolution(&self) -> Time {
        self.timing_resolution
    }

    /// Programs a delay; the tester rounds it to the nearest multiple of
    /// its timing resolution. Returns the value actually applied — the
    /// ~100 ps granularity that motivates the whole paper.
    pub fn program_delay(&mut self, target: Time) -> Time {
        self.programmed_delay = target.round_to(self.timing_resolution);
        self.programmed_delay
    }

    /// Renders the channel output: pattern at rate, displaced by intrinsic
    /// skew + programmed delay, with source RJ.
    pub fn generate(&self) -> EdgeStream {
        let clean = EdgeStream::nrz(&self.pattern, self.rate)
            .delayed(self.intrinsic_skew + self.programmed_delay);
        if self.rj_sigma > Time::ZERO {
            GaussianRj::new(self.rj_sigma, self.seed).apply(&clean)
        } else {
            clean
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vardelay_measure::mean_delay;

    fn pattern() -> BitPattern {
        BitPattern::prbs7(1, 127)
    }

    #[test]
    fn programmed_delay_quantizes() {
        let mut ch = AteChannel::sb6g(0, pattern(), 1);
        assert!((ch.program_delay(Time::from_ps(149.0)).as_ps() - 100.0).abs() < 1e-9);
        assert!((ch.program_delay(Time::from_ps(151.0)).as_ps() - 200.0).abs() < 1e-9);
        assert!((ch.program_delay(Time::from_ps(-51.0)).as_ps() + 100.0).abs() < 1e-9);
    }

    #[test]
    fn generate_applies_skew_and_delay() {
        let base = AteChannel::new(
            0,
            BitRate::from_gbps(6.4),
            pattern(),
            Time::from_ps(100.0),
            Time::ZERO,
            1,
        );
        let mut moved = base.clone().with_intrinsic_skew(Time::from_ps(63.0));
        moved.program_delay(Time::from_ps(200.0));
        let d = mean_delay(&base.generate(), &moved.generate()).unwrap();
        assert!((d.as_ps() - 263.0).abs() < 1e-9, "d {d}");
    }

    #[test]
    fn jitter_is_reproducible_per_seed() {
        let a = AteChannel::sb6g(0, pattern(), 9).generate();
        let b = AteChannel::sb6g(0, pattern(), 9).generate();
        let c = AteChannel::sb6g(0, pattern(), 10).generate();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn source_jitter_magnitude() {
        let ch = AteChannel::sb6g(0, BitPattern::prbs7(1, 20_000), 3);
        let tie = vardelay_measure::tie_sequence(&ch.generate());
        let stats = vardelay_measure::JitterStats::from_times(&tie).unwrap();
        assert!((stats.rms.as_ps() - 1.2).abs() < 0.15, "rms {}", stats.rms);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn resolution_validated() {
        let _ = AteChannel::new(
            0,
            BitRate::from_gbps(1.0),
            pattern(),
            Time::ZERO,
            Time::ZERO,
            1,
        );
    }
}
