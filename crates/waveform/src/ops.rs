//! Element-wise waveform operations.

use crate::waveform::Waveform;
use vardelay_units::{Time, Voltage};

impl Waveform {
    /// Multiplies every sample by `gain` in place.
    pub fn scale(&mut self, gain: f64) {
        for s in self.samples_mut() {
            *s *= gain;
        }
    }

    /// Adds `offset` volts to every sample in place.
    pub fn offset(&mut self, offset: Voltage) {
        let v = offset.as_v();
        for s in self.samples_mut() {
            *s += v;
        }
    }

    /// Clamps every sample into `[lo, hi]` volts in place — the rail
    /// limiting of a saturating buffer output.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn clamp_rails(&mut self, lo: Voltage, hi: Voltage) {
        assert!(lo <= hi, "clamp requires lo <= hi");
        let (lo, hi) = (lo.as_v(), hi.as_v());
        for s in self.samples_mut() {
            *s = s.clamp(lo, hi);
        }
    }

    /// Inverts the polarity of every sample in place (a differential pair's
    /// output swap).
    pub fn invert(&mut self) {
        for s in self.samples_mut() {
            *s = -*s;
        }
    }

    /// Adds another waveform sample-wise, resampling `other` onto this
    /// trace's grid by linear interpolation. Regions where `other` has no
    /// data use its clamped boundary values.
    ///
    /// The resample walks a cursor over `other`'s samples rather than
    /// performing an interpolated lookup per point, so the whole
    /// operation is O(n + m) with no heap allocation.
    pub fn add(&mut self, other: &Waveform) {
        if other.is_empty() {
            return; // value_at of an empty trace is 0.0 everywhere
        }
        let (t0, dt) = (self.t0(), self.dt());
        let (ot0, odt) = (other.t0(), other.dt());
        let os = other.samples();
        let last = os.len() - 1;
        // Cursor into `other`: self's grid is monotone in time, so the
        // bracketing segment index only ever advances.
        let mut j = 0usize;
        for (i, s) in self.samples_mut().iter_mut().enumerate() {
            let t = t0 + dt * i as f64;
            // Fractional index onto other's grid — same arithmetic as
            // `value_at`, so the numerics are bit-identical.
            let x = (t - ot0) / odt;
            if x <= 0.0 {
                *s += os[0];
            } else if x >= last as f64 {
                *s += os[last];
            } else {
                while (j + 1) as f64 <= x {
                    j += 1;
                }
                let frac = x - j as f64;
                *s += os[j] * (1.0 - frac) + os[j + 1] * frac;
            }
        }
    }

    /// Applies an arbitrary memoryless nonlinearity `f(v)` in place —
    /// used for the limiting-amplifier `tanh` characteristic.
    pub fn map(&mut self, f: impl Fn(f64) -> f64) {
        for s in self.samples_mut() {
            *s = f(*s);
        }
    }

    /// Returns a copy delayed by `dt` (pure time shift of the axis).
    pub fn delayed(&self, dt: Time) -> Waveform {
        Waveform::new(self.t0() + dt, self.dt(), self.samples().to_vec())
    }

    /// Resamples onto a new grid period by linear interpolation, covering
    /// the same time span. Upsampling interpolates; downsampling without a
    /// preceding low-pass aliases, exactly as on real capture hardware.
    ///
    /// # Panics
    ///
    /// Panics if `new_dt` is not strictly positive.
    pub fn resampled(&self, new_dt: Time) -> Waveform {
        assert!(new_dt > Time::ZERO, "sample period must be positive");
        if self.is_empty() {
            return Waveform::new(self.t0(), new_dt, Vec::new());
        }
        let n = (self.duration() / new_dt).floor() as usize + 1;
        let samples = (0..n)
            .map(|i| self.value_at(self.t0() + new_dt * i as f64))
            .collect();
        Waveform::new(self.t0(), new_dt, samples)
    }

    /// Keeps every `factor`-th sample (no anti-alias filter — compose with
    /// [`crate::OnePole`] first when decimating broadband content).
    ///
    /// # Panics
    ///
    /// Panics if `factor == 0`.
    pub fn decimated(&self, factor: usize) -> Waveform {
        assert!(factor > 0, "decimation factor must be positive");
        let samples: Vec<f64> = self.samples().iter().step_by(factor).copied().collect();
        Waveform::new(self.t0(), self.dt() * factor as f64, samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wf(samples: Vec<f64>) -> Waveform {
        Waveform::new(Time::ZERO, Time::from_ps(1.0), samples)
    }

    #[test]
    fn scale_offset_invert() {
        let mut w = wf(vec![0.1, -0.2]);
        w.scale(2.0);
        assert_eq!(w.samples(), &[0.2, -0.4]);
        w.offset(Voltage::from_mv(100.0));
        assert!((w.samples()[0] - 0.3).abs() < 1e-12);
        w.invert();
        assert!((w.samples()[0] + 0.3).abs() < 1e-12);
    }

    #[test]
    fn clamp_rails_saturates() {
        let mut w = wf(vec![-1.0, 0.0, 1.0]);
        w.clamp_rails(Voltage::from_mv(-400.0), Voltage::from_mv(400.0));
        assert_eq!(w.samples(), &[-0.4, 0.0, 0.4]);
    }

    #[test]
    fn add_resamples_other_grid() {
        let mut a = wf(vec![0.0, 0.0, 0.0, 0.0]);
        // `b` on a 2 ps grid: values 0.0, 0.2 at t = 0, 2 ps.
        let b = Waveform::new(Time::ZERO, Time::from_ps(2.0), vec![0.0, 0.2]);
        a.add(&b);
        assert!((a.samples()[1] - 0.1).abs() < 1e-12); // interpolated at 1 ps
        assert!((a.samples()[3] - 0.2).abs() < 1e-12); // clamped past b's end
    }

    #[test]
    fn add_matches_value_at_resampling_bit_for_bit() {
        // Offset, incommensurate grids exercise interpolation, both
        // clamp branches and the cursor walk. The cursor-based resample
        // must reproduce the old per-sample `value_at` loop exactly.
        let a0 = Waveform::new(
            Time::from_ps(3.7),
            Time::from_ps(0.9),
            (0..57).map(|i| (i as f64 * 0.31).sin()).collect(),
        );
        let b = Waveform::new(
            Time::from_ps(-2.0),
            Time::from_ps(2.3),
            (0..23).map(|i| (i as f64 * 0.47).cos()).collect(),
        );
        let mut fast = a0.clone();
        fast.add(&b);
        let reference: Vec<f64> = (0..a0.len())
            .map(|i| a0.samples()[i] + b.value_at(a0.time_of(i)))
            .collect();
        assert_eq!(fast.samples(), reference.as_slice());

        // Empty `other` must be a no-op (value_at of empty is 0.0).
        let mut untouched = a0.clone();
        untouched.add(&Waveform::zeros(Time::ZERO, Time::from_ps(1.0), 0));
        assert_eq!(untouched, a0);
    }

    #[test]
    fn map_applies_nonlinearity() {
        let mut w = wf(vec![-10.0, 0.0, 10.0]);
        w.map(|v| v.tanh());
        assert!(w.samples()[0] > -1.0 && w.samples()[0] < -0.999);
        assert_eq!(w.samples()[1], 0.0);
    }

    #[test]
    fn resample_preserves_values_on_shared_instants() {
        let w = Waveform::new(
            Time::ZERO,
            Time::from_ps(2.0),
            (0..10).map(|i| i as f64 * 0.1).collect(),
        );
        let up = w.resampled(Time::from_ps(1.0));
        assert_eq!(up.len(), 19);
        // Original samples survive; midpoints interpolate.
        assert!((up.samples()[4] - 0.2).abs() < 1e-12);
        assert!((up.samples()[5] - 0.25).abs() < 1e-12);
        // Round-tripping down again recovers the original grid values.
        let down = up.resampled(Time::from_ps(2.0));
        for (a, b) in w.samples().iter().zip(down.samples()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn decimate_keeps_every_nth() {
        let w = Waveform::new(
            Time::ZERO,
            Time::from_ps(1.0),
            (0..10).map(f64::from).collect(),
        );
        let d = w.decimated(3);
        assert_eq!(d.samples(), &[0.0, 3.0, 6.0, 9.0]);
        assert!((d.dt().as_ps() - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn decimate_validates_factor() {
        let _ = Waveform::zeros(Time::ZERO, Time::from_ps(1.0), 4).decimated(0);
    }

    #[test]
    fn delayed_shifts_axis_only() {
        let w = wf(vec![0.5]);
        let d = w.delayed(Time::from_ps(33.0));
        assert!((d.t0().as_ps() - 33.0).abs() < 1e-9);
        assert_eq!(d.samples(), w.samples());
    }
}
