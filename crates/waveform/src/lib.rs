//! Sampled differential waveform engine.
//!
//! This crate is the suite's stand-in for the analog domain: a [`Waveform`]
//! is a uniformly sampled differential voltage trace (one `f64` per sample,
//! positive = logic high). The behavioral circuit blocks in
//! `vardelay-analog` transform waveforms; this crate provides the
//! representation and the signal-processing primitives:
//!
//! * [`builder`] — render an edge stream into a waveform with finite rise
//!   time, swing and sample period.
//! * [`filter`] — one-pole low-pass, RC high-pass, and the slew-rate
//!   limiter whose finite ramp is the physical origin of the paper's
//!   amplitude-dependent delay.
//! * [`crossing`] — interpolated threshold-crossing extraction, the bridge
//!   back to the edge domain (this is "what the oscilloscope measures").
//! * [`eye`] — eye-diagram accumulation (raster plus crossing histograms).
//! * [`pool`] — thread-local recycling of flat `f64` sample buffers so
//!   the steady-state request path performs zero per-stage allocations.
//! * [`render`] — ASCII eye rendering and CSV export for examples.
//!
//! # Examples
//!
//! Render a 1 Gb/s clock pattern and recover its edges:
//!
//! ```
//! use vardelay_siggen::{BitPattern, EdgeStream};
//! use vardelay_units::{BitRate, Time, Voltage};
//! use vardelay_waveform::{RenderConfig, Waveform, crossings};
//!
//! let stream = EdgeStream::nrz(&BitPattern::clock(8), BitRate::from_gbps(1.0));
//! let cfg = RenderConfig::new(Time::from_ps(1.0), Voltage::from_mv(800.0), Time::from_ps(50.0));
//! let wf = Waveform::render(&stream, &cfg);
//! let edges = crossings(&wf, 0.0);
//! assert_eq!(edges.len(), stream.len());
//! ```

pub mod builder;
pub mod crossing;
pub mod eye;
pub mod filter;
pub mod ops;
pub mod pool;
pub mod render;
mod waveform;

pub use builder::RenderConfig;
pub use crossing::{crossings, to_edge_stream, Crossing};
pub use eye::EyeDiagram;
pub use filter::{OnePole, RcHighPass, SlewLimiter};
pub use waveform::Waveform;
