//! The [`Waveform`] container.

use vardelay_units::Time;

/// A uniformly sampled differential voltage trace.
///
/// Samples are differential volts: `+swing/2` is a settled logic high,
/// `−swing/2` a settled low, `0.0` the switching threshold. The trace
/// starts at `t0` and advances `dt` per sample.
///
/// # Examples
///
/// ```
/// use vardelay_units::Time;
/// use vardelay_waveform::Waveform;
///
/// let wf = Waveform::new(Time::ZERO, Time::from_ps(1.0), vec![-0.4, 0.0, 0.4]);
/// assert_eq!(wf.len(), 3);
/// assert!((wf.value_at(Time::from_ps(0.5)) + 0.2).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Waveform {
    t0: Time,
    dt: Time,
    samples: Vec<f64>,
}

impl Waveform {
    /// Creates a waveform from parts.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not strictly positive.
    pub fn new(t0: Time, dt: Time, samples: Vec<f64>) -> Self {
        assert!(dt > Time::ZERO, "sample period must be positive");
        Waveform { t0, dt, samples }
    }

    /// Creates an all-zero waveform with `n` samples.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not strictly positive.
    pub fn zeros(t0: Time, dt: Time, n: usize) -> Self {
        Self::new(t0, dt, vec![0.0; n])
    }

    /// First sample instant.
    pub fn t0(&self) -> Time {
        self.t0
    }

    /// Sample period.
    pub fn dt(&self) -> Time {
        self.dt
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` if the waveform holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Duration covered, `(len − 1)·dt` (zero for fewer than two samples).
    pub fn duration(&self) -> Time {
        if self.samples.len() < 2 {
            Time::ZERO
        } else {
            self.dt * (self.samples.len() - 1) as f64
        }
    }

    /// Instant of sample `i`.
    pub fn time_of(&self, i: usize) -> Time {
        self.t0 + self.dt * i as f64
    }

    /// The sample values.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Mutable access to the sample values.
    pub fn samples_mut(&mut self) -> &mut [f64] {
        &mut self.samples
    }

    /// Consumes the waveform and returns the sample buffer.
    pub fn into_samples(self) -> Vec<f64> {
        self.samples
    }

    /// Shifts the time axis by `offset` in place — the zero-copy
    /// counterpart of [`Waveform::delayed`].
    pub fn shift(&mut self, offset: Time) {
        self.t0 += offset;
    }

    /// Linearly interpolated value at instant `t`, clamping to the first /
    /// last sample outside the trace.
    pub fn value_at(&self, t: Time) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let x = (t - self.t0) / self.dt;
        if x <= 0.0 {
            return self.samples[0];
        }
        let last = self.samples.len() - 1;
        if x >= last as f64 {
            return self.samples[last];
        }
        let i = x as usize;
        let frac = x - i as f64;
        self.samples[i] * (1.0 - frac) + self.samples[i + 1] * frac
    }

    /// Iterates over `(time, value)` points.
    pub fn iter_points(&self) -> impl Iterator<Item = (Time, f64)> + '_ {
        self.samples
            .iter()
            .enumerate()
            .map(move |(i, &v)| (self.time_of(i), v))
    }

    /// Largest absolute sample value (0 for an empty trace).
    pub fn peak(&self) -> f64 {
        self.samples.iter().fold(0.0f64, |m, &v| m.max(v.abs()))
    }

    /// Minimum and maximum sample values, or `None` for an empty trace.
    pub fn extremes(&self) -> Option<(f64, f64)> {
        if self.samples.is_empty() {
            return None;
        }
        let mut lo = self.samples[0];
        let mut hi = self.samples[0];
        for &v in &self.samples {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        Some((lo, hi))
    }

    /// Returns a copy of the samples within `[from, to)` as a new waveform
    /// starting at the first retained sample's instant.
    pub fn slice(&self, from: Time, to: Time) -> Waveform {
        let i0 = (((from - self.t0) / self.dt).ceil().max(0.0)) as usize;
        let i1 = ((((to - self.t0) / self.dt).ceil().max(0.0)) as usize).min(self.samples.len());
        let i0 = i0.min(i1);
        Waveform {
            t0: self.time_of(i0),
            dt: self.dt,
            samples: self.samples[i0..i1].to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> Waveform {
        Waveform::new(
            Time::from_ps(10.0),
            Time::from_ps(1.0),
            (0..11).map(|i| i as f64 * 0.1).collect(),
        )
    }

    #[test]
    fn geometry() {
        let wf = ramp();
        assert_eq!(wf.len(), 11);
        assert!((wf.duration().as_ps() - 10.0).abs() < 1e-9);
        assert!((wf.time_of(3).as_ps() - 13.0).abs() < 1e-9);
    }

    #[test]
    fn interpolation_and_clamping() {
        let wf = ramp();
        assert!((wf.value_at(Time::from_ps(15.5)) - 0.55).abs() < 1e-12);
        assert!((wf.value_at(Time::from_ps(0.0)) - 0.0).abs() < 1e-12); // clamp low
        assert!((wf.value_at(Time::from_ps(99.0)) - 1.0).abs() < 1e-12); // clamp high
    }

    #[test]
    fn extremes_and_peak() {
        let wf = Waveform::new(Time::ZERO, Time::from_ps(1.0), vec![-0.3, 0.2, 0.1]);
        assert_eq!(wf.extremes(), Some((-0.3, 0.2)));
        assert!((wf.peak() - 0.3).abs() < 1e-12);
        assert_eq!(
            Waveform::zeros(Time::ZERO, Time::from_ps(1.0), 0).extremes(),
            None
        );
    }

    #[test]
    fn slice_respects_bounds() {
        let wf = ramp();
        let s = wf.slice(Time::from_ps(12.5), Time::from_ps(16.0));
        assert_eq!(s.len(), 3); // samples at 13, 14, 15 ps
        assert!((s.t0().as_ps() - 13.0).abs() < 1e-9);
        let empty = wf.slice(Time::from_ps(40.0), Time::from_ps(50.0));
        assert!(empty.is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dt_rejected() {
        let _ = Waveform::new(Time::ZERO, Time::ZERO, vec![]);
    }
}
