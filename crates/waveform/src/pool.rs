//! A thread-local pool of flat `f64` sample buffers.
//!
//! Every waveform-domain stage used to allocate (and drop) one fresh
//! `Vec<f64>` per `process` call — seven-plus heap round trips per
//! delay measurement, thousands per solve. The pool turns that into a
//! take/recycle cycle: a stage takes a buffer (reusing a previously
//! recycled allocation when one is available), builds its output in it,
//! and the chain driver recycles each intermediate trace as soon as the
//! next stage has consumed it. After the first stage of the first
//! request on a thread, the steady state is **zero allocations per
//! stage**.
//!
//! The pool is thread-local on purpose: no locks on the hot path, no
//! cross-thread buffer migration, and — because a buffer never changes
//! threads — identical numerical results at every thread count (the
//! pool only recycles capacity, never contents; every take clears the
//! buffer before use).
//!
//! Two observability counters feed the bench journal's
//! allocations-per-request dimension:
//!
//! * `waveform.pool_allocs` — takes that had to touch the allocator
//!   (cold pool or first use on a thread);
//! * `waveform.pool_reuses` — takes served from a recycled buffer.

use std::cell::RefCell;

/// Buffers retained per thread. A full characterization sweep keeps at
/// most a handful of traces alive at once; anything beyond this cap is
/// returned to the allocator instead of hoarded.
const MAX_POOLED: usize = 16;

thread_local! {
    static POOL: RefCell<Vec<Vec<f64>>> = const { RefCell::new(Vec::new()) };
}

/// Takes an empty buffer with at least `capacity` spare room, reusing a
/// recycled allocation when one is available.
pub fn take(capacity: usize) -> Vec<f64> {
    let reused = POOL.with(|p| p.borrow_mut().pop());
    match reused {
        Some(mut buf) => {
            vardelay_obs::counter("waveform.pool_reuses").incr();
            buf.clear();
            buf.reserve(capacity);
            buf
        }
        None => {
            vardelay_obs::counter("waveform.pool_allocs").incr();
            Vec::with_capacity(capacity)
        }
    }
}

/// Takes a buffer holding a copy of `src` — the pooled replacement for
/// `input.samples().to_vec()` / `input.clone()` at the head of a stage.
pub fn take_copy(src: &[f64]) -> Vec<f64> {
    let mut buf = take(src.len());
    buf.extend_from_slice(src);
    buf
}

/// Returns a buffer to the calling thread's pool for reuse. Contents
/// are discarded; only the capacity survives. Buffers beyond the
/// per-thread cap (or with no capacity worth keeping) are dropped.
pub fn recycle(mut buf: Vec<f64>) {
    if buf.capacity() == 0 {
        return;
    }
    buf.clear();
    POOL.with(|p| {
        let mut pool = p.borrow_mut();
        if pool.len() < MAX_POOLED {
            pool.push(buf);
        }
    });
}

/// `(allocs, reuses)` of the process-wide pool counters — allocations
/// that reached the heap versus takes served from recycled buffers.
pub fn pool_stats() -> (u64, u64) {
    (
        vardelay_obs::counter("waveform.pool_allocs").get(),
        vardelay_obs::counter("waveform.pool_reuses").get(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recycled_capacity_is_reused() {
        // Drain whatever this thread's pool holds so the test owns it.
        while let Some(buf) = POOL.with(|p| p.borrow_mut().pop()) {
            drop(buf);
        }
        let mut a = take(100);
        a.resize(100, 1.5);
        let ptr = a.as_ptr();
        recycle(a);
        let b = take(50);
        assert_eq!(b.as_ptr(), ptr, "recycled buffer must be handed back");
        assert!(b.is_empty(), "takes must start from a cleared buffer");
        assert!(b.capacity() >= 100);
    }

    #[test]
    fn pool_is_bounded() {
        while let Some(buf) = POOL.with(|p| p.borrow_mut().pop()) {
            drop(buf);
        }
        for _ in 0..(MAX_POOLED + 10) {
            recycle(Vec::with_capacity(8));
        }
        let held = POOL.with(|p| p.borrow().len());
        assert!(held <= MAX_POOLED, "pool holds {held}");
    }

    #[test]
    fn zero_capacity_buffers_are_not_pooled() {
        while let Some(buf) = POOL.with(|p| p.borrow_mut().pop()) {
            drop(buf);
        }
        recycle(Vec::new());
        assert_eq!(POOL.with(|p| p.borrow().len()), 0);
    }
}
