//! Rendering edge streams into waveforms.

use crate::waveform::Waveform;
use vardelay_siggen::EdgeStream;
use vardelay_units::{Time, Voltage};

/// Parameters for rendering an [`EdgeStream`] into a [`Waveform`].
///
/// # Examples
///
/// ```
/// use vardelay_units::{Time, Voltage};
/// use vardelay_waveform::RenderConfig;
///
/// // The suite's default source: 800 mV swing, 0.25 ps grid, 30 ps edges.
/// let cfg = RenderConfig::default_source();
/// assert!((cfg.swing.as_mv() - 800.0).abs() < 1e-9);
/// let fine = RenderConfig::new(Time::from_ps(0.1), Voltage::from_mv(400.0), Time::from_ps(20.0));
/// assert!(fine.dt < cfg.dt);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RenderConfig {
    /// Sample period of the produced trace.
    pub dt: Time,
    /// Full differential swing (high − low).
    pub swing: Voltage,
    /// 0–100 % linear ramp duration of each rendered transition.
    pub rise_time: Time,
    /// Extra settled time rendered before the first and after the last
    /// edge, so filters have context. Defaults to two rise times.
    pub padding: Time,
}

impl RenderConfig {
    /// Creates a configuration with `padding` of two rise times.
    ///
    /// # Panics
    ///
    /// Panics if `dt`, `swing` or `rise_time` is not strictly positive.
    pub fn new(dt: Time, swing: Voltage, rise_time: Time) -> Self {
        assert!(dt > Time::ZERO, "sample period must be positive");
        assert!(swing > Voltage::ZERO, "swing must be positive");
        assert!(rise_time > Time::ZERO, "rise time must be positive");
        RenderConfig {
            dt,
            swing,
            rise_time,
            padding: rise_time * 2.0,
        }
    }

    /// The suite's reference source: 0.25 ps sampling, 800 mV differential
    /// swing, 30 ps transitions — a clean full-swing driver comparable to
    /// the paper's pattern generator output.
    pub fn default_source() -> Self {
        Self::new(
            Time::from_ps(0.25),
            Voltage::from_mv(800.0),
            Time::from_ps(30.0),
        )
    }

    /// Same as [`RenderConfig::default_source`] but with a caller-chosen
    /// rise time, for stressing slew-sensitive blocks.
    pub fn source_with_rise(rise_time: Time) -> Self {
        Self::new(Time::from_ps(0.25), Voltage::from_mv(800.0), rise_time)
    }
}

impl Waveform {
    /// Renders `stream` into a sampled trace.
    ///
    /// Each transition is a linear ramp of `cfg.rise_time` *centred* on the
    /// edge instant, so the 50 % crossing of the rendered trace coincides
    /// with the edge time — the invariant every measurement relies on.
    pub fn render(stream: &EdgeStream, cfg: &RenderConfig) -> Waveform {
        let half = cfg.swing.as_v() / 2.0;
        let t0 = stream.start() - cfg.padding;
        let t_end = stream.end() + cfg.padding;
        let n = ((t_end - t0) / cfg.dt).ceil() as usize + 1;
        let mut samples = crate::pool::take(n);
        let rise = cfg.rise_time;
        let edges = stream.edges();

        let mut idx = 0usize; // first edge whose ramp may still affect t
        for i in 0..n {
            let t = t0 + cfg.dt * i as f64;
            // Skip edges whose ramp has fully completed before t.
            while idx < edges.len() && edges[idx].time + rise * 0.5 < t {
                idx += 1;
            }
            // Level from completed edges: levels alternate, so parity of the
            // count of completed edges determines the settled level.
            let completed = idx;
            let mut level = if completed.is_multiple_of(2) != stream.initial_high() {
                -half
            } else {
                half
            };
            // At most one ramp is in flight at t when edge spacing exceeds
            // the rise time; for robustness walk all overlapping ramps.
            let mut j = idx;
            while j < edges.len() && edges[j].time - rise * 0.5 <= t {
                let frac = ((t - (edges[j].time - rise * 0.5)) / rise).clamp(0.0, 1.0);
                let target = match edges[j].kind {
                    vardelay_siggen::EdgeKind::Rising => half,
                    vardelay_siggen::EdgeKind::Falling => -half,
                };
                level = level + (target - level) * frac;
                j += 1;
            }
            samples.push(level);
        }
        Waveform::new(t0, cfg.dt, samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crossing::crossings;
    use vardelay_siggen::BitPattern;
    use vardelay_units::BitRate;

    fn clock_stream(bits: usize, gbps: f64) -> EdgeStream {
        EdgeStream::nrz(&BitPattern::clock(bits), BitRate::from_gbps(gbps))
    }

    #[test]
    fn rendered_crossings_match_edge_times() {
        let stream = clock_stream(10, 1.0);
        let cfg = RenderConfig::new(
            Time::from_ps(0.5),
            Voltage::from_mv(800.0),
            Time::from_ps(40.0),
        );
        let wf = Waveform::render(&stream, &cfg);
        let xs = crossings(&wf, 0.0);
        assert_eq!(xs.len(), stream.len());
        for (edge, x) in stream.edges().iter().zip(&xs) {
            assert!(
                (x.time - edge.time).abs() < Time::from_ps(0.6),
                "crossing off by {}",
                (x.time - edge.time)
            );
        }
    }

    #[test]
    fn settled_levels_reach_rails() {
        let stream = clock_stream(4, 0.1); // 10 ns bits: fully settled
        let cfg = RenderConfig::default_source();
        let wf = Waveform::render(&stream, &cfg);
        let (lo, hi) = wf.extremes().unwrap();
        assert!((hi - 0.4).abs() < 1e-9);
        assert!((lo + 0.4).abs() < 1e-9);
    }

    #[test]
    fn empty_stream_renders_flat_line() {
        let stream = EdgeStream::nrz(
            &BitPattern::from_str("0000").unwrap(),
            BitRate::from_gbps(1.0),
        );
        let wf = Waveform::render(&stream, &RenderConfig::default_source());
        let (lo, hi) = wf.extremes().unwrap();
        assert!((lo + 0.4).abs() < 1e-9 && (hi + 0.4).abs() < 1e-9);
    }

    #[test]
    fn overlapping_ramps_do_not_explode() {
        // Rise time longer than the bit period: ramps overlap; levels must
        // stay within the rails.
        let stream = clock_stream(20, 10.0); // 100 ps bits
        let cfg = RenderConfig::source_with_rise(Time::from_ps(150.0));
        let wf = Waveform::render(&stream, &cfg);
        let (lo, hi) = wf.extremes().unwrap();
        assert!(hi <= 0.4 + 1e-9 && lo >= -0.4 - 1e-9);
        // Swing compression at high toggle rates is produced by the analog
        // blocks (slew limiter / one-pole), not by the ideal renderer; here
        // we only require the rendering to remain bounded and well-formed.
        assert!(wf.samples().iter().all(|v| v.is_finite()));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn config_validates() {
        let _ = RenderConfig::new(Time::ZERO, Voltage::from_mv(1.0), Time::from_ps(1.0));
    }
}
