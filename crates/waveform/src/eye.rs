//! Eye-diagram accumulation.
//!
//! An [`EyeDiagram`] folds a long capture modulo two unit intervals into a
//! raster (for rendering and vertical metrics) and collects the threshold
//! crossing instants folded modulo one UI (for horizontal/jitter metrics).
//! This mirrors what the paper's sampling oscilloscope displays in
//! Figs. 12–14.

use crate::crossing::crossings;
use crate::waveform::Waveform;
use vardelay_siggen::EdgeStream;
use vardelay_units::Time;

/// A folded eye: sample raster plus crossing-time population.
///
/// # Examples
///
/// ```
/// use vardelay_siggen::{BitPattern, EdgeStream};
/// use vardelay_units::{BitRate, Time, Voltage};
/// use vardelay_waveform::{EyeDiagram, RenderConfig, Waveform};
///
/// let rate = BitRate::from_gbps(4.8);
/// let stream = EdgeStream::nrz(&BitPattern::prbs7(1, 200), rate);
/// let wf = Waveform::render(&stream, &RenderConfig::default_source());
/// let mut eye = EyeDiagram::new(rate.bit_period(), 64, 32, 0.5);
/// eye.add_waveform(&wf);
/// assert!(!eye.crossing_offsets().is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct EyeDiagram {
    ui: Time,
    cols: usize,
    rows: usize,
    v_limit: f64,
    counts: Vec<u32>,
    crossing_offsets: Vec<Time>,
    samples_accumulated: u64,
}

impl EyeDiagram {
    /// Creates an empty eye for signals with unit interval `ui`.
    ///
    /// The raster is `cols × rows` spanning two UI horizontally and
    /// `±v_limit` volts vertically.
    ///
    /// # Panics
    ///
    /// Panics if `ui`, `cols`, `rows` or `v_limit` is not positive.
    pub fn new(ui: Time, cols: usize, rows: usize, v_limit: f64) -> Self {
        assert!(ui > Time::ZERO, "unit interval must be positive");
        assert!(cols > 0 && rows > 0, "raster must be non-empty");
        assert!(v_limit > 0.0, "voltage limit must be positive");
        EyeDiagram {
            ui,
            cols,
            rows,
            v_limit,
            counts: vec![0; cols * rows],
            crossing_offsets: Vec::new(),
            samples_accumulated: 0,
        }
    }

    /// The nominal unit interval.
    pub fn ui(&self) -> Time {
        self.ui
    }

    /// Raster width in columns (spanning two UI).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Raster height in rows (spanning `±v_limit`).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The raster's vertical half-span in volts.
    pub fn v_limit(&self) -> f64 {
        self.v_limit
    }

    /// Hit count of raster cell `(col, row)`; row 0 is the most negative
    /// voltage.
    pub fn count_at(&self, col: usize, row: usize) -> u32 {
        self.counts[row * self.cols + col]
    }

    /// Total samples folded in so far.
    pub fn samples_accumulated(&self) -> u64 {
        self.samples_accumulated
    }

    /// Folds an instant into a phase offset in `[-ui/2, ui/2)` relative to
    /// the nearest bit boundary.
    pub fn fold_offset(&self, t: Time) -> Time {
        let ui = self.ui.as_s();
        let x = t.as_s() / ui;
        let frac = x - x.round();
        Time::from_s(frac * ui)
    }

    /// Accumulates a waveform: every sample lands in the raster, and every
    /// zero crossing joins the crossing population.
    pub fn add_waveform(&mut self, wf: &Waveform) {
        let span = self.ui.as_s() * 2.0;
        for (t, v) in wf.iter_points() {
            let phase = (t.as_s() / span).rem_euclid(1.0);
            let col = ((phase * self.cols as f64) as usize).min(self.cols - 1);
            let norm = ((v + self.v_limit) / (2.0 * self.v_limit)).clamp(0.0, 1.0);
            let row = ((norm * (self.rows - 1) as f64).round()) as usize;
            self.counts[row * self.cols + col] += 1;
            self.samples_accumulated += 1;
        }
        for c in crossings(wf, 0.0) {
            self.crossing_offsets.push(self.fold_offset(c.time));
        }
    }

    /// Accumulates only the crossing population from an edge stream (no
    /// raster content) — the fast path used by edge-domain models.
    pub fn add_edge_stream(&mut self, stream: &EdgeStream) {
        for t in stream.times() {
            self.crossing_offsets.push(self.fold_offset(t));
        }
    }

    /// The folded crossing offsets collected so far.
    pub fn crossing_offsets(&self) -> &[Time] {
        &self.crossing_offsets
    }

    /// Peak-to-peak spread of the crossing population — the oscilloscope's
    /// "total jitter" readout on an eye crossing. `None` until at least one
    /// crossing was collected.
    pub fn crossing_peak_to_peak(&self) -> Option<Time> {
        let min = self.crossing_offsets.iter().min_by(|a, b| a.total_cmp(b))?;
        let max = self.crossing_offsets.iter().max_by(|a, b| a.total_cmp(b))?;
        Some(*max - *min)
    }

    /// Mean of the crossing population — the eye-crossing position used to
    /// measure delay shifts between two circuit settings. `None` until at
    /// least one crossing was collected.
    pub fn crossing_mean(&self) -> Option<Time> {
        if self.crossing_offsets.is_empty() {
            return None;
        }
        Some(
            self.crossing_offsets.iter().copied().sum::<Time>()
                / self.crossing_offsets.len() as f64,
        )
    }

    /// Vertical eye opening at horizontal position `phase` (fraction of the
    /// 2-UI raster width; crossings sit at 0.0 and 0.5, eye centres at
    /// 0.25 and 0.75): the contiguous run of empty raster cells *around
    /// the 0 V decision threshold* in that column, in volts — a collapsed
    /// signal hugging the threshold therefore reads as a closed eye even
    /// if empty space remains near the rails. Returns 0 for a fully
    /// occupied, threshold-occupied, or never-filled column.
    pub fn opening_at(&self, phase: f64) -> f64 {
        let col = (((phase.clamp(0.0, 1.0)) * self.cols as f64) as usize).min(self.cols - 1);
        let cell_v = 2.0 * self.v_limit / self.rows as f64;
        let any_occupied = (0..self.rows).any(|row| self.counts[row * self.cols + col] != 0);
        if !any_occupied {
            return 0.0;
        }
        // The 0 V threshold sits mid-raster; grow the empty run outward
        // from there.
        let zero_row = self.rows / 2;
        if self.counts[zero_row * self.cols + col] != 0 {
            return 0.0;
        }
        let mut lo = zero_row;
        while lo > 0 && self.counts[(lo - 1) * self.cols + col] == 0 {
            lo -= 1;
        }
        let mut hi = zero_row;
        while hi + 1 < self.rows && self.counts[(hi + 1) * self.cols + col] == 0 {
            hi += 1;
        }
        (hi - lo + 1) as f64 * cell_v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::RenderConfig;
    use vardelay_siggen::BitPattern;
    use vardelay_units::{BitRate, Voltage};

    fn eye_of(rate_gbps: f64, bits: usize) -> EyeDiagram {
        let rate = BitRate::from_gbps(rate_gbps);
        let stream = EdgeStream::nrz(&BitPattern::prbs7(1, bits), rate);
        let cfg = RenderConfig::new(
            Time::from_ps(0.5),
            Voltage::from_mv(800.0),
            Time::from_ps(40.0),
        );
        let wf = Waveform::render(&stream, &cfg);
        let mut eye = EyeDiagram::new(rate.bit_period(), 80, 40, 0.5);
        eye.add_waveform(&wf);
        eye
    }

    #[test]
    fn clean_signal_has_tight_crossings() {
        let eye = eye_of(2.0, 127);
        // Edges land exactly on bit boundaries → folded offsets ~0.
        let pp = eye.crossing_peak_to_peak().unwrap();
        assert!(pp < Time::from_ps(1.5), "pp = {pp}");
        let mean = eye.crossing_mean().unwrap();
        assert!(mean.abs() < Time::from_ps(1.0), "mean = {mean}");
    }

    #[test]
    fn fold_offset_wraps_to_half_ui() {
        let eye = EyeDiagram::new(Time::from_ps(100.0), 10, 10, 0.5);
        assert!((eye.fold_offset(Time::from_ps(510.0)).as_ps() - 10.0).abs() < 1e-9);
        assert!((eye.fold_offset(Time::from_ps(490.0)).as_ps() + 10.0).abs() < 1e-9);
        assert!((eye.fold_offset(Time::from_ps(250.0)).as_ps() + 50.0).abs() < 1e-9);
    }

    #[test]
    fn open_eye_has_vertical_opening() {
        let eye = eye_of(2.0, 127);
        // Eye centre (phase 0.25 of the 2-UI raster) of a clean 2 Gb/s
        // signal is wide open (> 500 mV of the 800 mV swing).
        let centre = eye.opening_at(0.25);
        assert!(centre > 0.5, "opening {centre}");
        // At the crossing (phase 0.0) the eye is narrower.
        assert!(eye.opening_at(0.0) < centre);
    }

    #[test]
    fn add_edge_stream_populates_crossings_only() {
        let rate = BitRate::from_gbps(1.0);
        let stream = EdgeStream::nrz(&BitPattern::clock(50), rate);
        let mut eye = EyeDiagram::new(rate.bit_period(), 16, 16, 0.5);
        eye.add_edge_stream(&stream);
        assert_eq!(eye.crossing_offsets().len(), stream.len());
        assert_eq!(eye.samples_accumulated(), 0);
    }

    #[test]
    fn empty_eye_yields_none() {
        let eye = EyeDiagram::new(Time::from_ps(100.0), 8, 8, 0.4);
        assert!(eye.crossing_peak_to_peak().is_none());
        assert!(eye.crossing_mean().is_none());
        assert_eq!(eye.opening_at(0.5), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn constructor_validates() {
        let _ = EyeDiagram::new(Time::ZERO, 8, 8, 0.4);
    }
}
