//! Threshold-crossing extraction — the oscilloscope's timing measurement.

use crate::waveform::Waveform;
use vardelay_siggen::{Edge, EdgeKind, EdgeStream};
use vardelay_units::Time;

/// A detected threshold crossing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Crossing {
    /// Interpolated crossing instant.
    pub time: Time,
    /// Crossing direction.
    pub kind: EdgeKind,
}

/// Finds all crossings of `threshold` volts, with linear interpolation
/// between samples for sub-sample timing resolution.
///
/// Samples exactly on the threshold resolve with the following sample's
/// direction; flat regions on the threshold produce no crossings.
///
/// # Examples
///
/// ```
/// use vardelay_units::Time;
/// use vardelay_waveform::{crossings, Waveform};
///
/// let wf = Waveform::new(Time::ZERO, Time::from_ps(1.0), vec![-0.4, 0.4, -0.4]);
/// let xs = crossings(&wf, 0.0);
/// assert_eq!(xs.len(), 2);
/// assert!((xs[0].time.as_ps() - 0.5).abs() < 1e-9);
/// ```
pub fn crossings(wf: &Waveform, threshold: f64) -> Vec<Crossing> {
    let samples = wf.samples();
    let mut out = Vec::new();
    if samples.len() < 2 {
        return out;
    }
    for i in 0..samples.len() - 1 {
        let a = samples[i] - threshold;
        let b = samples[i + 1] - threshold;
        // Strict sign change, or departure from an exact threshold touch.
        let crossed = (a < 0.0 && b > 0.0) || (a > 0.0 && b < 0.0) || (a == 0.0 && b != 0.0);
        if !crossed {
            continue;
        }
        let frac = if a == 0.0 { 0.0 } else { a / (a - b) };
        out.push(Crossing {
            time: wf.time_of(i) + wf.dt() * frac,
            kind: if b > a {
                EdgeKind::Rising
            } else {
                EdgeKind::Falling
            },
        });
    }
    out
}

/// Converts a waveform back into an [`EdgeStream`] by extracting its
/// `threshold` crossings. `ui` is attached as the stream's nominal unit
/// interval for downstream eye folding.
///
/// Glitch pairs caused by noise riding on the threshold are removed by
/// keeping only polarity-alternating crossings (first crossing wins).
pub fn to_edge_stream(wf: &Waveform, threshold: f64, ui: Time) -> EdgeStream {
    let raw = crossings(wf, threshold);
    let mut edges: Vec<Edge> = Vec::with_capacity(raw.len());
    for c in raw {
        match edges.last() {
            Some(last) if last.kind == c.kind => {} // drop same-polarity glitch
            _ => edges.push(Edge {
                time: c.time,
                kind: c.kind,
            }),
        }
    }
    let initial_high = edges.first().is_some_and(|e| e.kind == EdgeKind::Falling);
    let start = wf.t0();
    let end = wf.t0() + wf.duration();
    EdgeStream::from_parts(edges, start, end, initial_high, ui)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::RenderConfig;
    use vardelay_siggen::BitPattern;
    use vardelay_units::{BitRate, Voltage};

    #[test]
    fn interpolation_is_subsample_accurate() {
        // Ramp from -0.3 to +0.1 between samples 0 and 1: crossing at 0.75.
        let wf = Waveform::new(Time::ZERO, Time::from_ps(1.0), vec![-0.3, 0.1]);
        let xs = crossings(&wf, 0.0);
        assert_eq!(xs.len(), 1);
        assert!((xs[0].time.as_ps() - 0.75).abs() < 1e-12);
        assert_eq!(xs[0].kind, EdgeKind::Rising);
    }

    #[test]
    fn nonzero_threshold() {
        let wf = Waveform::new(Time::ZERO, Time::from_ps(1.0), vec![0.0, 0.2, 0.0]);
        let xs = crossings(&wf, 0.1);
        assert_eq!(xs.len(), 2);
        assert_eq!(xs[0].kind, EdgeKind::Rising);
        assert_eq!(xs[1].kind, EdgeKind::Falling);
    }

    #[test]
    fn exact_touch_resolves_once() {
        let wf = Waveform::new(Time::ZERO, Time::from_ps(1.0), vec![-0.1, 0.0, 0.1]);
        let xs = crossings(&wf, 0.0);
        assert_eq!(xs.len(), 1);
        assert!((xs[0].time.as_ps() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn flat_threshold_region_produces_nothing() {
        let wf = Waveform::new(Time::ZERO, Time::from_ps(1.0), vec![0.0, 0.0, 0.0]);
        assert!(crossings(&wf, 0.0).is_empty());
    }

    #[test]
    fn round_trip_stream_waveform_stream() {
        let rate = BitRate::from_gbps(2.0);
        let stream = EdgeStream::nrz(&BitPattern::prbs7(1, 64), rate);
        let cfg = RenderConfig::new(
            Time::from_ps(0.5),
            Voltage::from_mv(800.0),
            Time::from_ps(40.0),
        );
        let wf = Waveform::render(&stream, &cfg);
        let back = to_edge_stream(&wf, 0.0, rate.bit_period());
        assert_eq!(back.len(), stream.len());
        assert!(back.is_well_formed());
        for (a, b) in stream.edges().iter().zip(back.edges()) {
            assert_eq!(a.kind, b.kind);
            assert!((a.time - b.time).abs() < Time::from_ps(1.0));
        }
    }

    #[test]
    fn glitches_are_suppressed() {
        // Noise blip creating rise/rise sequence is cleaned to alternation.
        let wf = Waveform::new(
            Time::ZERO,
            Time::from_ps(1.0),
            vec![-0.4, 0.4, -0.001, 0.4, -0.4],
        );
        let s = to_edge_stream(&wf, 0.0, Time::from_ps(10.0));
        assert!(s.is_well_formed());
    }
}
