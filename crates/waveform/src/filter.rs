//! Filtering primitives: one-pole low-pass, RC high-pass, slew limiter.
//!
//! These three primitives are the entire analog vocabulary the behavioral
//! buffer model needs: bandwidth (one-pole), AC coupling (high-pass) and —
//! crucially — the [`SlewLimiter`], whose finite ramp rate is the physical
//! mechanism behind the paper's amplitude-dependent propagation delay: a
//! larger programmed swing takes `A/(2·SR)` longer to reach the 50 %
//! threshold (paper Figs. 4–5).

use crate::waveform::Waveform;
use vardelay_units::{Frequency, Time};

/// A single-pole low-pass filter, `H(s) = 1/(1 + s·τ)`.
///
/// # Examples
///
/// ```
/// use vardelay_units::Frequency;
/// use vardelay_waveform::OnePole;
///
/// let lp = OnePole::with_corner(Frequency::from_ghz(12.0));
/// assert!(lp.tau().as_ps() > 13.0 && lp.tau().as_ps() < 14.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnePole {
    tau: Time,
}

impl OnePole {
    /// Creates a filter from its time constant.
    ///
    /// # Panics
    ///
    /// Panics if `tau` is not strictly positive.
    pub fn new(tau: Time) -> Self {
        assert!(tau > Time::ZERO, "time constant must be positive");
        OnePole { tau }
    }

    /// Creates a filter from its −3 dB corner frequency.
    pub fn with_corner(f3db: Frequency) -> Self {
        Self::new(f3db.one_pole_tau())
    }

    /// Returns the time constant.
    pub fn tau(&self) -> Time {
        self.tau
    }

    /// Filters the waveform in place (initial state = first sample, so a
    /// settled input produces no start-up transient).
    pub fn apply(&self, wf: &mut Waveform) {
        if wf.is_empty() {
            return;
        }
        // Exact discretization of the one-pole step response.
        let alpha = 1.0 - (-(wf.dt() / self.tau)).exp();
        let samples = wf.samples_mut();
        let mut y = samples[0];
        for s in samples.iter_mut() {
            y += alpha * (*s - y);
            *s = y;
        }
    }
}

/// A first-order RC high-pass filter, `H(s) = s·τ/(1 + s·τ)` — the AC
/// coupling the paper uses to inject a noise source onto `Vctrl`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RcHighPass {
    tau: Time,
}

impl RcHighPass {
    /// Creates a filter from its time constant.
    ///
    /// # Panics
    ///
    /// Panics if `tau` is not strictly positive.
    pub fn new(tau: Time) -> Self {
        assert!(tau > Time::ZERO, "time constant must be positive");
        RcHighPass { tau }
    }

    /// Creates a filter from its −3 dB corner frequency.
    pub fn with_corner(f3db: Frequency) -> Self {
        Self::new(f3db.one_pole_tau())
    }

    /// Returns the time constant.
    pub fn tau(&self) -> Time {
        self.tau
    }

    /// Filters the waveform in place. The initial state assumes the input
    /// has been at its first value forever (output starts at zero).
    pub fn apply(&self, wf: &mut Waveform) {
        if wf.is_empty() {
            return;
        }
        let beta = (-(wf.dt() / self.tau)).exp();
        let samples = wf.samples_mut();
        let mut y = 0.0;
        let mut x_prev = samples[0];
        for s in samples.iter_mut() {
            let x = *s;
            y = beta * (y + x - x_prev);
            x_prev = x;
            *s = y;
        }
    }
}

/// A symmetric slew-rate limiter: the output follows the input but cannot
/// move faster than `rate` volts per second in either direction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlewLimiter {
    rate_v_per_s: f64,
}

impl SlewLimiter {
    /// Creates a limiter with the given maximum |dV/dt| in volts/second.
    ///
    /// # Panics
    ///
    /// Panics if `rate_v_per_s` is not strictly positive.
    pub fn new(rate_v_per_s: f64) -> Self {
        assert!(rate_v_per_s > 0.0, "slew rate must be positive");
        SlewLimiter { rate_v_per_s }
    }

    /// Creates a limiter from a rate expressed in volts per picosecond
    /// (the natural unit at these speeds: the paper's buffer slews
    /// ~0.03 V/ps).
    pub fn from_v_per_ps(rate: f64) -> Self {
        Self::new(rate * 1e12)
    }

    /// Maximum |dV/dt| in volts/second.
    pub fn rate(&self) -> f64 {
        self.rate_v_per_s
    }

    /// Applies the limiter in place (initial state = first sample).
    pub fn apply(&self, wf: &mut Waveform) {
        if wf.is_empty() {
            return;
        }
        let max_step = self.rate_v_per_s * wf.dt().as_s();
        let samples = wf.samples_mut();
        let mut y = samples[0];
        for s in samples.iter_mut() {
            let d = (*s - y).clamp(-max_step, max_step);
            y += d;
            *s = y;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vardelay_units::Time;

    fn step(n: usize, level: f64) -> Waveform {
        let mut s = vec![0.0; n];
        for v in s.iter_mut().skip(1) {
            *v = level;
        }
        Waveform::new(Time::ZERO, Time::from_ps(1.0), s)
    }

    #[test]
    fn one_pole_step_response() {
        let mut wf = step(1000, 1.0);
        let lp = OnePole::new(Time::from_ps(50.0));
        lp.apply(&mut wf);
        // After one tau (50 ps) the response is 1 - 1/e ≈ 0.632.
        let v = wf.value_at(Time::from_ps(51.0));
        assert!((v - 0.632).abs() < 0.01, "v = {v}");
        // Fully settled at the end.
        assert!((wf.samples()[999] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn one_pole_no_transient_for_settled_input() {
        let mut wf = Waveform::new(Time::ZERO, Time::from_ps(1.0), vec![0.4; 100]);
        OnePole::new(Time::from_ps(20.0)).apply(&mut wf);
        assert!(wf.samples().iter().all(|&v| (v - 0.4).abs() < 1e-12));
    }

    #[test]
    fn high_pass_blocks_dc_and_passes_steps() {
        let mut wf = step(5000, 1.0);
        RcHighPass::new(Time::from_ps(200.0)).apply(&mut wf);
        // Immediately after the step the full swing passes…
        assert!(wf.samples()[1] > 0.95);
        // …and decays towards zero (DC blocked).
        assert!(wf.samples()[4999].abs() < 1e-9);
    }

    #[test]
    fn slew_limiter_ramp_rate() {
        let mut wf = step(200, 1.0);
        SlewLimiter::from_v_per_ps(0.01).apply(&mut wf);
        // 1 V at 0.01 V/ps → 100 ps to complete; check mid-ramp value.
        let v = wf.value_at(Time::from_ps(50.0));
        assert!((v - 0.49).abs() < 0.02, "v = {v}");
        assert!((wf.samples()[150] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn slew_limiter_is_transparent_for_slow_signals() {
        let samples: Vec<f64> = (0..100).map(|i| (i as f64 * 0.01).sin() * 0.1).collect();
        let mut wf = Waveform::new(Time::ZERO, Time::from_ps(1.0), samples.clone());
        SlewLimiter::from_v_per_ps(1.0).apply(&mut wf);
        for (a, b) in samples.iter().zip(wf.samples()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_waveforms_are_no_ops() {
        let mut wf = Waveform::zeros(Time::ZERO, Time::from_ps(1.0), 0);
        OnePole::new(Time::from_ps(1.0)).apply(&mut wf);
        RcHighPass::new(Time::from_ps(1.0)).apply(&mut wf);
        SlewLimiter::new(1.0).apply(&mut wf);
        assert!(wf.is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn slew_rate_validated() {
        let _ = SlewLimiter::new(0.0);
    }
}
