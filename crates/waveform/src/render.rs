//! Text rendering and CSV export — the suite's "scope screen".

use crate::eye::EyeDiagram;
use crate::waveform::Waveform;
use std::fmt::Write as _;

/// Renders the eye raster as ASCII art (density-coded: ` .:+#@`), one text
/// row per raster row, top = positive voltage.
///
/// # Examples
///
/// ```
/// use vardelay_units::Time;
/// use vardelay_waveform::EyeDiagram;
/// use vardelay_waveform::render::eye_to_ascii;
///
/// let eye = EyeDiagram::new(Time::from_ps(100.0), 8, 4, 0.4);
/// let art = eye_to_ascii(&eye);
/// assert_eq!(art.lines().count(), 4);
/// ```
pub fn eye_to_ascii(eye: &EyeDiagram) -> String {
    const SHADES: &[u8] = b" .:+#@";
    let mut max = 1u32;
    for col in 0..eye.cols() {
        for row in 0..eye.rows() {
            max = max.max(eye.count_at(col, row));
        }
    }
    let mut out = String::with_capacity((eye.cols() + 1) * eye.rows());
    for row in (0..eye.rows()).rev() {
        for col in 0..eye.cols() {
            let c = eye.count_at(col, row);
            let shade = if c == 0 {
                0
            } else {
                // Log-ish mapping keeps faint traces visible.
                let f = (c as f64).ln() / (max as f64).ln().max(1e-9);
                1 + ((SHADES.len() - 2) as f64 * f).round() as usize
            };
            out.push(SHADES[shade.min(SHADES.len() - 1)] as char);
        }
        out.push('\n');
    }
    out
}

/// Serializes a waveform as two-column CSV (`time_ps,volts`).
pub fn waveform_to_csv(wf: &Waveform) -> String {
    let mut out = String::with_capacity(wf.len() * 24 + 16);
    out.push_str("time_ps,volts\n");
    for (t, v) in wf.iter_points() {
        let _ = writeln!(out, "{:.4},{:.6}", t.as_ps(), v);
    }
    out
}

/// Serializes paired series as CSV with a header row.
///
/// # Panics
///
/// Panics if `xs` and `ys` have different lengths.
pub fn series_to_csv(x_label: &str, y_label: &str, xs: &[f64], ys: &[f64]) -> String {
    assert_eq!(xs.len(), ys.len(), "series must be the same length");
    let mut out = String::new();
    let _ = writeln!(out, "{x_label},{y_label}");
    for (x, y) in xs.iter().zip(ys) {
        let _ = writeln!(out, "{x:.6},{y:.6}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vardelay_units::Time;

    #[test]
    fn ascii_eye_dimensions() {
        let mut eye = EyeDiagram::new(Time::from_ps(100.0), 10, 5, 0.4);
        let wf = Waveform::new(Time::ZERO, Time::from_ps(1.0), vec![0.2; 500]);
        eye.add_waveform(&wf);
        let art = eye_to_ascii(&eye);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines.iter().all(|l| l.len() == 10));
        // A constant +0.2 V trace paints one row; everything else is blank.
        assert!(art.contains('@') || art.contains('#'));
    }

    #[test]
    fn waveform_csv_round_trip_shape() {
        let wf = Waveform::new(Time::ZERO, Time::from_ps(1.0), vec![0.1, -0.1]);
        let csv = waveform_to_csv(&wf);
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("time_ps,volts"));
        assert_eq!(lines.count(), 2);
    }

    #[test]
    fn series_csv() {
        let csv = series_to_csv("vctrl_v", "delay_ps", &[0.0, 1.0], &[2.0, 50.0]);
        assert!(csv.starts_with("vctrl_v,delay_ps\n"));
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn series_csv_validates_lengths() {
        let _ = series_to_csv("x", "y", &[1.0], &[]);
    }
}
