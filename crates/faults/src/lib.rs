//! Deterministic, seeded fault injection for the vardelay models.
//!
//! The paper's circuit is meant to live under a DIB for months — DAC bits
//! stick, mux select lines short, transmission lines come out the wrong
//! length (the prototype's own taps measure 0/33/70/95 ps against a
//! 0/33/66/99 ps design), drivers die, and the thermal environment moves
//! under a stale calibration. This crate models those failure modes as
//! plain value types that wrap or perturb the healthy models in
//! `vardelay-core`, so the self-test ([`vardelay_core::selftest`]) and the
//! degraded-mode deskew loop can be exercised against *known* injected
//! faults and scored on what they detect.
//!
//! # Determinism
//!
//! Fault injection obeys the workspace's reproducibility contract
//! (DESIGN.md §8/§10): every stochastic choice derives from
//! [`vardelay_runner::task_seed`] applied to a caller-provided root seed
//! and a stable lane index — never from wall-clock, thread identity, or
//! global state. A [`FaultPlan`] replayed at any thread count injects the
//! exact same faults at the exact same conversions.
//!
//! # Kill switch
//!
//! `VARDELAY_FAULTS=0` (or `off`/`false`) in the environment disables
//! every plan — [`FaultPlan::active`] returns no faults, so a production
//! run can carry the campaign wiring with zero injected behavior.
//! [`set_enabled`] overrides the environment either way (used by tests).

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU8, Ordering};
use std::time::Duration;

use vardelay_core::config::ModelConfig;
use vardelay_core::drift::TempCo;
use vardelay_core::selftest::DacUnderTest;
use vardelay_core::{CalibrationTable, VctrlDac};
use vardelay_runner::task_seed;
use vardelay_siggen::SplitMix64;
use vardelay_units::{Time, Voltage};

// ---------------------------------------------------------------------------
// Kill switch
// ---------------------------------------------------------------------------

/// 0 = unresolved, 1 = on, 2 = off (same tri-state idiom as `vardelay-obs`).
static ENABLED: AtomicU8 = AtomicU8::new(0);

/// Whether fault plans inject anything. Defaults to **on**;
/// `VARDELAY_FAULTS=0` (or `off`/`false`) in the environment disables
/// injection, and [`set_enabled`] overrides either way at runtime.
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            let on = !matches!(
                std::env::var("VARDELAY_FAULTS").as_deref(),
                Ok("0") | Ok("off") | Ok("false")
            );
            ENABLED.store(if on { 1 } else { 2 }, Ordering::Relaxed);
            on
        }
    }
}

/// Forces fault injection on or off, overriding the environment.
pub fn set_enabled(on: bool) {
    ENABLED.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Crash injection
// ---------------------------------------------------------------------------

/// A named crash-injection point for the kill-and-resume chaos gate
/// (DESIGN.md §11).
///
/// `repro` calls `kill_point(name)` immediately after experiment
/// `name`'s checkpoint is written. When the environment carries
/// `VARDELAY_KILL_AFTER=<name>`, the matching call **aborts the
/// process** — no unwinding, no destructors, no flushes — which is the
/// closest simulation of a mid-campaign `kill -9` that a portable test
/// can arrange. The chaos CI job launches `repro all` with a kill point
/// set, then proves that `repro all --resume` completes the campaign
/// with byte-identical CSVs.
///
/// The point is deterministic by construction: it is named, not timed,
/// so the same environment kills the same campaign at the same place on
/// every machine. Unset (the default), this is a no-op on every call.
///
/// The durable serving layer (DESIGN.md §16) adds three points of its
/// own, each sitting inside a torn-state window the recovery path must
/// survive: `snapshot-rename` (snapshot staged but not yet published),
/// `wal-append` (record written, response not yet acked) and
/// `wal-compact` (fresh snapshots written, log not yet truncated).
/// Note that in-process test servers must never set
/// `VARDELAY_KILL_AFTER` — the abort takes the whole test process with
/// it; the CI restart job kills real server processes instead.
pub fn kill_point(name: &str) {
    if std::env::var("VARDELAY_KILL_AFTER").as_deref() == Ok(name) {
        eprintln!("faults: VARDELAY_KILL_AFTER={name} reached — simulating a crash");
        std::process::abort();
    }
}

/// Seeded worker-kill chaos for the `vardelay-serve` request path
/// (DESIGN.md §12).
///
/// Each request carries a monotone index assigned at admission; the
/// worker that picks it up asks [`RequestChaos::kills`] whether this is
/// a doomed request. A kill is a plain `panic!` *inside* the worker's
/// `catch_unwind` — the client gets a structured `internal` error
/// response and the worker thread survives to take the next job, which
/// is exactly the fault-isolation property the serve chaos gate scores.
///
/// Determinism follows the workspace contract: the verdict is
/// `task_seed(seed, index) % one_in == 0`, so the same seed dooms the
/// same request indices regardless of worker count or timing. The
/// global [`enabled`] kill switch (`VARDELAY_FAULTS=0`) masks it like
/// every other fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestChaos {
    seed: u64,
    one_in: u64,
}

impl RequestChaos {
    /// A chaos plan that dooms roughly one request in `one_in`,
    /// deterministically by request index. `one_in == 0` never kills.
    pub fn new(seed: u64, one_in: u64) -> Self {
        RequestChaos { seed, one_in }
    }

    /// Reads `VARDELAY_SERVE_CHAOS`. Accepted forms: `<one_in>` or
    /// `<one_in>:<seed>` (seed defaults to 0). Unset, empty, or
    /// unparsable values disable chaos entirely.
    pub fn from_env() -> Option<Self> {
        let raw = std::env::var("VARDELAY_SERVE_CHAOS").ok()?;
        let raw = raw.trim();
        let (one_in, seed) = match raw.split_once(':') {
            Some((n, s)) => (n.trim().parse().ok()?, s.trim().parse().ok()?),
            None => (raw.parse().ok()?, 0u64),
        };
        if one_in == 0 {
            return None;
        }
        Some(RequestChaos::new(seed, one_in))
    }

    /// Whether the request with this admission index is doomed.
    pub fn kills(&self, request_index: u64) -> bool {
        enabled()
            && self.one_in != 0
            && task_seed(self.seed, request_index).is_multiple_of(self.one_in)
    }
}

// ---------------------------------------------------------------------------
// Fault taxonomy
// ---------------------------------------------------------------------------

/// One injectable hardware fault (DESIGN.md §10 taxonomy).
///
/// Each variant corresponds to a physical failure of the paper's circuit;
/// the campaign in `vardelay-bench` injects each kind and scores whether
/// the self-test or the degraded deskew loop catches it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// DAC data bit `bit` reads back 0 regardless of the requested code.
    DacStuckLow { bit: u8 },
    /// DAC data bit `bit` reads back 1 regardless of the requested code.
    DacStuckHigh { bit: u8 },
    /// DAC data bit `bit` flips on a fraction `probability` of
    /// conversions (marginal solder joint / metastable latch).
    DacFlakyBit { bit: u8, probability: f64 },
    /// The calibration measurement at grid point `point` comes back
    /// spiked by `spike` (a mis-triggered sampling scope shot).
    CalibrationSpike { point: usize, spike: Time },
    /// Coarse-mux select line `line` (0 or 1) is shorted to `level`.
    MuxSelectStuck { line: u8, level: bool },
    /// Coarse tap `tap` is `extra` longer than its design (etch error).
    TapDeviation { tap: usize, extra: Time },
    /// Channel `channel` produces no signal at all.
    DeadDriver { channel: usize },
    /// Channel `channel` fails its first `fail_attempts` measurement
    /// attempts, then recovers (marginal contact; retry succeeds).
    WeakDriver { channel: usize, fail_attempts: u32 },
    /// The operating temperature steps `delta_k` kelvin away from the
    /// calibration point mid-run.
    TempStep { delta_k: f64 },
    /// Carry-chain bin `bin` of a Vernier backend collapses (a routing
    /// "bubble"): every delay downstream of the bin shifts by roughly
    /// one step while the stale calibration table still predicts the
    /// healthy chain. Only meaningful for the Vernier backend
    /// (`vardelay-backend`).
    VernierChainBubble { bin: usize },
    /// A DLL backend's loop loses lock: answers are grossly wrong until
    /// a recalibration re-locks the loop. Only meaningful for the DLL
    /// backend (`vardelay-backend`).
    DllLockLoss,
}

impl FaultKind {
    /// Short stable identifier for CSV/journal rows.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::DacStuckLow { .. } => "dac_stuck_low",
            FaultKind::DacStuckHigh { .. } => "dac_stuck_high",
            FaultKind::DacFlakyBit { .. } => "dac_flaky_bit",
            FaultKind::CalibrationSpike { .. } => "calibration_spike",
            FaultKind::MuxSelectStuck { .. } => "mux_select_stuck",
            FaultKind::TapDeviation { .. } => "tap_deviation",
            FaultKind::DeadDriver { .. } => "dead_driver",
            FaultKind::WeakDriver { .. } => "weak_driver",
            FaultKind::TempStep { .. } => "temp_step",
            FaultKind::VernierChainBubble { .. } => "vernier_chain_bubble",
            FaultKind::DllLockLoss => "dll_lock_loss",
        }
    }

    /// The fault's scalar parameter, rendered stably for CSV rows.
    pub fn param(&self) -> String {
        match self {
            FaultKind::DacStuckLow { bit } | FaultKind::DacStuckHigh { bit } => {
                format!("bit={bit}")
            }
            FaultKind::DacFlakyBit { bit, probability } => format!("bit={bit};p={probability}"),
            FaultKind::CalibrationSpike { point, spike } => {
                format!("point={point};spike_ps={}", spike.as_ps())
            }
            FaultKind::MuxSelectStuck { line, level } => {
                format!("line={line};level={}", u8::from(*level))
            }
            FaultKind::TapDeviation { tap, extra } => {
                format!("tap={tap};extra_ps={}", extra.as_ps())
            }
            FaultKind::DeadDriver { channel } => format!("channel={channel}"),
            FaultKind::WeakDriver {
                channel,
                fail_attempts,
            } => format!("channel={channel};fails={fail_attempts}"),
            FaultKind::TempStep { delta_k } => format!("delta_k={delta_k}"),
            FaultKind::VernierChainBubble { bin } => format!("bin={bin}"),
            FaultKind::DllLockLoss => "relock=required".to_owned(),
        }
    }

    /// Applies the configuration-level faults ([`FaultKind::TapDeviation`],
    /// [`FaultKind::TempStep`]) to a model configuration; every other
    /// variant leaves it untouched (those act on the DAC, calibration, or
    /// driver layers instead).
    ///
    /// # Panics
    ///
    /// Panics if a tap deviation targets a tap ≥ 4 or drives its total
    /// delay negative (`ModelConfig` validation), or if a temperature step
    /// is unphysical (see [`ModelConfig::at_temperature_offset`]).
    pub fn apply_to_config(&self, config: &ModelConfig) -> ModelConfig {
        match *self {
            FaultKind::TapDeviation { tap, extra } => {
                assert!(tap < 4, "coarse section has 4 taps, got {tap}");
                let mut cfg = config.clone();
                cfg.coarse_tap_deviations[tap] += extra;
                cfg
            }
            FaultKind::TempStep { delta_k } => {
                config.at_temperature_offset(delta_k, &TempCo::default())
            }
            _ => config.clone(),
        }
    }
}

impl core::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}({})", self.label(), self.param())
    }
}

// ---------------------------------------------------------------------------
// Fault plan
// ---------------------------------------------------------------------------

/// A seeded collection of faults to inject into one experiment.
///
/// The plan owns the root seed from which every per-lane fault seed is
/// derived ([`FaultPlan::seed_for`]), so an experiment that records its
/// plan is replayable bit-for-bit.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    root_seed: u64,
    faults: Vec<FaultKind>,
}

impl FaultPlan {
    /// An empty plan rooted at `seed`.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            root_seed: seed,
            faults: Vec::new(),
        }
    }

    /// Adds a fault to the plan (builder style).
    pub fn with(mut self, fault: FaultKind) -> Self {
        self.faults.push(fault);
        self
    }

    /// The root seed this plan derives lane seeds from.
    pub fn root_seed(&self) -> u64 {
        self.root_seed
    }

    /// The faults this plan will inject — empty when the
    /// `VARDELAY_FAULTS` kill switch has injection disabled.
    pub fn active(&self) -> &[FaultKind] {
        if enabled() {
            &self.faults
        } else {
            &[]
        }
    }

    /// The planned faults regardless of the kill switch (for reporting).
    pub fn planned(&self) -> &[FaultKind] {
        &self.faults
    }

    /// Deterministic seed for injection lane `lane` — the same
    /// [`task_seed`] derivation the runner uses for its tasks, so fault
    /// randomness is independent of experiment randomness even when both
    /// derive from one root seed.
    pub fn seed_for(&self, lane: u64) -> u64 {
        task_seed(self.root_seed, lane)
    }
}

// ---------------------------------------------------------------------------
// DAC faults
// ---------------------------------------------------------------------------

/// A [`VctrlDac`] wrapped with stuck and flaky data bits.
///
/// Stuck bits force the converted code's bit high or low; flaky bits flip
/// on a seeded, conversion-indexed fraction of conversions, so a repeated
/// conversion of the same code can disagree with itself — exactly the
/// signature [`vardelay_core::selftest::test_dac`] hunts for. The flip
/// decision for conversion `n` of bit `b` derives from
/// `task_seed(seed, n * 64 + b)`: reproducible, order-independent across
/// threads as long as each lane owns its own `FaultyDac`.
#[derive(Debug, Clone)]
pub struct FaultyDac {
    inner: VctrlDac,
    or_mask: u32,
    and_mask: u32,
    flaky: Vec<(u8, f64)>,
    seed: u64,
    conversions: u64,
}

impl FaultyDac {
    /// Wraps `inner`, applying every DAC-level fault in `faults` (other
    /// fault kinds are ignored). `seed` drives flaky-bit randomness.
    pub fn from_plan(inner: VctrlDac, faults: &[FaultKind], seed: u64) -> Self {
        let mut dac = FaultyDac {
            inner,
            or_mask: 0,
            and_mask: u32::MAX,
            flaky: Vec::new(),
            seed,
            conversions: 0,
        };
        for fault in faults {
            match *fault {
                FaultKind::DacStuckHigh { bit } => dac.or_mask |= 1 << bit,
                FaultKind::DacStuckLow { bit } => dac.and_mask &= !(1u32 << bit),
                FaultKind::DacFlakyBit { bit, probability } => {
                    dac.flaky.push((bit, probability));
                }
                _ => {}
            }
        }
        dac
    }

    /// The healthy DAC underneath.
    pub fn inner(&self) -> &VctrlDac {
        &self.inner
    }

    /// Number of conversions performed so far (the flaky-bit lane index).
    pub fn conversions(&self) -> u64 {
        self.conversions
    }
}

impl DacUnderTest for FaultyDac {
    fn bits(&self) -> u8 {
        self.inner.bits()
    }

    fn nominal_span(&self) -> Voltage {
        self.inner.span()
    }

    fn convert(&mut self, code: u32) -> Voltage {
        let mut effective = (code | self.or_mask) & self.and_mask;
        for &(bit, probability) in &self.flaky {
            let lane = self.conversions * 64 + u64::from(bit);
            let mut rng = SplitMix64::new(task_seed(self.seed, lane));
            if rng.next_f64() < probability {
                effective ^= 1 << bit;
            }
        }
        self.conversions += 1;
        self.inner.voltage(effective)
    }
}

// ---------------------------------------------------------------------------
// Calibration faults
// ---------------------------------------------------------------------------

/// Wraps a calibration measurement closure so the shot at grid point
/// `point` comes back spiked by `spike` — feed the result to
/// [`CalibrationTable::from_measurement`] to build a corrupted table.
///
/// Because `from_measurement` monotonizes with a running maximum, the
/// spike flattens every later genuine point onto it, which is the
/// footprint [`vardelay_core::selftest::check_calibration`] detects.
pub fn corrupted_measure<F>(point: usize, spike: Time, mut inner: F) -> impl FnMut(Voltage) -> Time
where
    F: FnMut(Voltage) -> Time,
{
    let mut calls = 0usize;
    move |v| {
        let base = inner(v);
        let out = if calls == point { base + spike } else { base };
        calls += 1;
        out
    }
}

/// Builds a corrupted copy of an already-measured table by replaying its
/// grid through [`corrupted_measure`].
pub fn corrupt_table(table: &CalibrationTable, point: usize, spike: Time) -> CalibrationTable {
    let delays = table.delays().to_vec();
    let mut index = 0usize;
    CalibrationTable::from_measurement(
        table.vctrls(),
        corrupted_measure(point, spike, move |_| {
            let d = delays[index];
            index += 1;
            d
        }),
    )
}

// ---------------------------------------------------------------------------
// Coarse-mux faults
// ---------------------------------------------------------------------------

/// Stuck select lines on the coarse 4:1 mux.
///
/// The mux is addressed by two digital select lines; a line shorted to a
/// rail makes some taps unreachable. [`effective_tap`](Self::effective_tap)
/// maps a requested tap to the tap the broken hardware actually selects.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MuxSelectFault {
    stuck_or: u8,
    stuck_and_not: u8,
}

impl MuxSelectFault {
    /// Collects every [`FaultKind::MuxSelectStuck`] in `faults`.
    ///
    /// # Panics
    ///
    /// Panics if a fault names a select line other than 0 or 1.
    pub fn from_plan(faults: &[FaultKind]) -> Self {
        let mut fault = MuxSelectFault::default();
        for f in faults {
            if let FaultKind::MuxSelectStuck { line, level } = *f {
                assert!(line < 2, "the 4:1 mux has 2 select lines, got {line}");
                if level {
                    fault.stuck_or |= 1 << line;
                } else {
                    fault.stuck_and_not |= 1 << line;
                }
            }
        }
        fault
    }

    /// Whether any select line is stuck.
    pub fn is_faulty(&self) -> bool {
        self.stuck_or != 0 || self.stuck_and_not != 0
    }

    /// The tap the hardware actually selects when `requested` is asked
    /// for (both in 0..4).
    pub fn effective_tap(&self, requested: usize) -> usize {
        let select = (requested as u8) & 0b11;
        usize::from((select | self.stuck_or) & !self.stuck_and_not & 0b11)
    }

    /// The distinct taps reachable through the broken select lines, in
    /// ascending order — fewer than 4 means the fault is observable from
    /// a tap sweep.
    pub fn reachable_taps(&self) -> Vec<usize> {
        let mut taps: Vec<usize> = (0..4).map(|t| self.effective_tap(t)).collect();
        taps.sort_unstable();
        taps.dedup();
        taps
    }
}

// ---------------------------------------------------------------------------
// Driver faults
// ---------------------------------------------------------------------------

/// Deterministic per-channel measurement-failure predicate, built from
/// [`FaultKind::DeadDriver`] and [`FaultKind::WeakDriver`] entries.
///
/// This is the bridge between injected driver faults and the degraded
/// deskew loop: the loop asks [`fails`](Self::fails) before each
/// measurement attempt, so a dead driver never measures and a weak one
/// recovers after its configured number of retries. Being a pure
/// function of `(channel, attempt)`, the predicate is identical at every
/// thread count.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TransientFaults {
    /// `(channel, attempts_that_fail)`; `u32::MAX` means dead forever.
    channels: Vec<(usize, u32)>,
}

impl TransientFaults {
    /// Collects the driver faults in `faults`.
    pub fn from_plan(faults: &[FaultKind]) -> Self {
        let mut t = TransientFaults::default();
        for f in faults {
            match *f {
                FaultKind::DeadDriver { channel } => t.channels.push((channel, u32::MAX)),
                FaultKind::WeakDriver {
                    channel,
                    fail_attempts,
                } => t.channels.push((channel, fail_attempts)),
                _ => {}
            }
        }
        t
    }

    /// Whether measurement attempt `attempt` (1-based) on `channel`
    /// fails.
    pub fn fails(&self, channel: usize, attempt: u32) -> bool {
        self.channels
            .iter()
            .filter(|(c, _)| *c == channel)
            .any(|&(_, n)| attempt <= n)
    }

    /// Channels that never recover (dead drivers).
    pub fn dead_channels(&self) -> Vec<usize> {
        let mut dead: Vec<usize> = self
            .channels
            .iter()
            .filter(|&&(_, n)| n == u32::MAX)
            .map(|&(c, _)| c)
            .collect();
        dead.sort_unstable();
        dead.dedup();
        dead
    }
}

// ---------------------------------------------------------------------------
// Network chaos
// ---------------------------------------------------------------------------

/// One misbehaving-client pattern for the serve layer's socket front
/// (DESIGN.md §15).
///
/// Each variant is a classic way a real network peer pins a naive
/// line-oriented server; the serve layer's per-connection IO deadlines
/// and partial-line reaper exist to survive all four.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFaultKind {
    /// Drips a request one byte at a time with long gaps and never sends
    /// the newline — the connection always looks "active", so only a
    /// partial-line deadline (not an idle check) catches it.
    SlowLoris,
    /// Sends half a request line, then disconnects mid-line.
    MidLineDisconnect,
    /// Sends a complete request in several short, delayed writes — a
    /// *legal* slow client the server must still answer.
    ShortWrite,
    /// Pipelines many requests and never reads a byte of the responses,
    /// backing the server's writes up against a full socket buffer.
    StalledReader,
}

impl NetFaultKind {
    /// Stable label used in logs and soak reports.
    pub fn label(&self) -> &'static str {
        match self {
            NetFaultKind::SlowLoris => "slow_loris",
            NetFaultKind::MidLineDisconnect => "mid_line_disconnect",
            NetFaultKind::ShortWrite => "short_write",
            NetFaultKind::StalledReader => "stalled_reader",
        }
    }
}

impl core::fmt::Display for NetFaultKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

/// A seeded plan of misbehaving network clients aimed at a serve
/// endpoint.
///
/// Like every other plan in this crate, the choice of which fault
/// strikes when is `task_seed(seed, strike_index)` — replaying a soak
/// with the same seed replays the same strike sequence — and the global
/// [`enabled`] kill switch (`VARDELAY_FAULTS=0`) masks the whole plan.
/// The strikes themselves are wall-clock-paced (they exist to tie up
/// real sockets), so *when* a strike lands is not reproducible; *which*
/// strike lands is.
#[derive(Debug, Clone, PartialEq)]
pub struct NetChaos {
    seed: u64,
    /// Pause between dripped bytes / short-write chunks.
    pub gap: Duration,
    /// The request line strikes send (complete or truncated per kind).
    /// Junk is fine — a parse error is still a served response — but a
    /// valid request exercises the full path.
    pub line: String,
}

impl NetChaos {
    /// A plan cycling through every [`NetFaultKind`] in seeded order.
    pub fn new(seed: u64) -> Self {
        NetChaos {
            seed,
            gap: Duration::from_millis(20),
            line: "{\"op\":\"set_delay\",\"channel\":0,\"ps\":25.0,\"id\":9}".to_string(),
        }
    }

    /// Which fault strike number `strike` injects, or `None` when the
    /// kill switch has the plan masked.
    pub fn kind_for(&self, strike: u64) -> Option<NetFaultKind> {
        if !enabled() {
            return None;
        }
        const KINDS: [NetFaultKind; 4] = [
            NetFaultKind::SlowLoris,
            NetFaultKind::MidLineDisconnect,
            NetFaultKind::ShortWrite,
            NetFaultKind::StalledReader,
        ];
        Some(KINDS[(task_seed(self.seed, strike) % KINDS.len() as u64) as usize])
    }

    /// Executes strike number `strike` against `addr` (blocking for the
    /// strike's duration) and reports which fault it was. `Ok(None)`
    /// means the plan is masked. Connection errors *during* a strike are
    /// success, not failure — the server reaping the misbehaving socket
    /// is the defended behavior — so only the initial connect can fail.
    pub fn strike(&self, addr: SocketAddr, strike: u64) -> std::io::Result<Option<NetFaultKind>> {
        let Some(kind) = self.kind_for(strike) else {
            return Ok(None);
        };
        match kind {
            NetFaultKind::SlowLoris => slow_loris(addr, &self.line, self.gap)?,
            NetFaultKind::MidLineDisconnect => mid_line_disconnect(addr, &self.line)?,
            NetFaultKind::ShortWrite => short_write(addr, &self.line, self.gap)?,
            NetFaultKind::StalledReader => stalled_reader(addr, &self.line, 64, self.gap)?,
        }
        Ok(Some(kind))
    }
}

/// Drips `line` (without its terminating newline) one byte at a time,
/// sleeping `gap` between bytes, then drops the connection. Returns as
/// soon as the server cuts the socket — that early exit is the behavior
/// under test, so a mid-drip write error is success.
pub fn slow_loris(addr: SocketAddr, line: &str, gap: Duration) -> std::io::Result<()> {
    let mut stream = TcpStream::connect(addr)?;
    for &byte in line.trim_end_matches('\n').as_bytes() {
        if stream.write_all(&[byte]).is_err() || stream.flush().is_err() {
            return Ok(()); // reaped — exactly what the server should do
        }
        std::thread::sleep(gap);
    }
    Ok(())
}

/// Sends the first half of `line` (never the newline) and disconnects
/// mid-line without warning.
pub fn mid_line_disconnect(addr: SocketAddr, line: &str) -> std::io::Result<()> {
    let mut stream = TcpStream::connect(addr)?;
    let bytes = line.trim_end_matches('\n').as_bytes();
    let _ = stream.write_all(&bytes[..bytes.len() / 2]);
    let _ = stream.shutdown(Shutdown::Both);
    Ok(())
}

/// Sends `line` as three short, delayed writes — newline last — then
/// waits for the response the server still owes this legal-but-slow
/// client. Returns `Ok` whether or not a response arrived in time; the
/// caller's test asserts on server stats, not on this socket.
pub fn short_write(addr: SocketAddr, line: &str, gap: Duration) -> std::io::Result<()> {
    let mut stream = TcpStream::connect(addr)?;
    let mut framed = line.trim_end_matches('\n').as_bytes().to_vec();
    framed.push(b'\n');
    let third = framed.len().div_ceil(3);
    for chunk in framed.chunks(third) {
        if stream.write_all(chunk).is_err() || stream.flush().is_err() {
            return Ok(());
        }
        std::thread::sleep(gap);
    }
    let _ = stream.set_read_timeout(Some(gap * 10));
    let mut sink = [0u8; 512];
    let _ = stream.read(&mut sink);
    Ok(())
}

/// Pipelines `lines` complete copies of `line`, never reads a byte of
/// the responses, holds the stalled socket open for `hold`, then drops
/// it. With enough lines the server's reply writes back up against the
/// socket buffer and its write deadline must fire.
pub fn stalled_reader(
    addr: SocketAddr,
    line: &str,
    lines: usize,
    hold: Duration,
) -> std::io::Result<()> {
    let stream = TcpStream::connect(addr)?;
    let mut framed = line.trim_end_matches('\n').as_bytes().to_vec();
    framed.push(b'\n');
    let mut writer = &stream;
    for _ in 0..lines {
        if writer.write_all(&framed).is_err() {
            break;
        }
    }
    let _ = writer.flush();
    std::thread::sleep(hold);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use vardelay_core::selftest::test_dac;

    #[test]
    fn plan_seeds_are_deterministic_and_distinct() {
        let plan = FaultPlan::new(42).with(FaultKind::DeadDriver { channel: 3 });
        assert_eq!(plan.seed_for(0), plan.seed_for(0));
        assert_ne!(plan.seed_for(0), plan.seed_for(1));
        assert_eq!(plan.seed_for(7), task_seed(42, 7));
        assert_eq!(plan.root_seed(), 42);
    }

    #[test]
    fn kill_switch_empties_active_but_not_planned() {
        let plan = FaultPlan::new(1).with(FaultKind::DacStuckLow { bit: 5 });
        set_enabled(true);
        assert_eq!(plan.active().len(), 1);
        set_enabled(false);
        assert!(plan.active().is_empty());
        assert_eq!(plan.planned().len(), 1);
        set_enabled(true);
    }

    #[test]
    fn request_chaos_is_deterministic_and_sparse() {
        set_enabled(true);
        let chaos = RequestChaos::new(7, 25);
        let doomed: Vec<u64> = (0..500).filter(|&i| chaos.kills(i)).collect();
        // Same seed → same doomed set; rate lands near 1-in-25.
        assert_eq!(
            doomed,
            (0..500).filter(|&i| chaos.kills(i)).collect::<Vec<_>>()
        );
        assert!(doomed.len() >= 5 && doomed.len() <= 60, "{doomed:?}");
        // one_in == 0 is inert, and the global kill switch masks it.
        assert!(!(0..500).any(|i| RequestChaos::new(7, 0).kills(i)));
        set_enabled(false);
        assert!(!doomed.iter().any(|&i| chaos.kills(i)));
        set_enabled(true);
    }

    #[test]
    fn stuck_bits_are_detected_by_the_self_test() {
        let faults = [
            FaultKind::DacStuckLow { bit: 9 },
            FaultKind::DacStuckHigh { bit: 1 },
        ];
        let mut dac = FaultyDac::from_plan(VctrlDac::twelve_bit(), &faults, 7);
        let health = test_dac(&mut dac);
        assert_eq!(health.stuck_low, 1 << 9, "{health:?}");
        assert_eq!(health.stuck_high, 1 << 1, "{health:?}");
        assert!(!health.is_healthy());
    }

    #[test]
    fn flaky_bit_is_detected_and_reproducible() {
        let faults = [FaultKind::DacFlakyBit {
            bit: 6,
            probability: 0.25,
        }];
        let mut a = FaultyDac::from_plan(VctrlDac::twelve_bit(), &faults, 1234);
        let ha = test_dac(&mut a);
        // The flaky bit shows up directly, and (because the shared
        // all-zeros/all-ones probes also flicker) may smear across the
        // report — detection is the contract, not isolation.
        assert_ne!(ha.flaky & (1 << 6), 0, "{ha:?}");
        assert!(!ha.is_healthy());
        // Same seed → identical health report; different seed may differ
        // in *which* conversions flip but still detects the bit.
        let mut b = FaultyDac::from_plan(VctrlDac::twelve_bit(), &faults, 1234);
        assert_eq!(ha, test_dac(&mut b));
        let mut c = FaultyDac::from_plan(VctrlDac::twelve_bit(), &faults, 99);
        assert_ne!(test_dac(&mut c).flaky, 0);
    }

    #[test]
    fn healthy_plan_wraps_transparently() {
        let mut dac = FaultyDac::from_plan(VctrlDac::twelve_bit(), &[], 5);
        let ideal = VctrlDac::twelve_bit();
        for code in [0u32, 1, 1000, 4095] {
            assert_eq!(dac.convert(code), ideal.voltage(code));
        }
        assert_eq!(dac.conversions(), 4);
        assert!(test_dac(&mut dac).is_healthy());
    }

    #[test]
    fn corrupted_measure_spikes_exactly_one_point() {
        let mut m = corrupted_measure(2, Time::from_ps(50.0), |v: Voltage| {
            Time::from_ps(10.0 * v.as_v())
        });
        let grid = [0.0, 0.5, 1.0, 1.5].map(Voltage::from_v);
        let out: Vec<f64> = grid.iter().map(|&v| m(v).as_ps()).collect();
        let expect = [0.0, 5.0, 60.0, 15.0];
        for (got, want) in out.iter().zip(expect) {
            assert!((got - want).abs() < 1e-9, "{out:?}");
        }
    }

    #[test]
    fn corrupt_table_is_flagged_by_check_calibration() {
        use vardelay_core::selftest::check_calibration;
        let grid: Vec<Voltage> = (0..17)
            .map(|i| Voltage::from_v(1.5 * i as f64 / 16.0))
            .collect();
        let clean = CalibrationTable::from_measurement(&grid, |v| {
            Time::from_ps(100.0 + 30.0 * v.as_v() / 1.5)
        });
        assert!(check_calibration(&clean, Time::from_ps(15.0)).is_healthy());
        let bad = corrupt_table(&clean, 4, Time::from_ps(80.0));
        let health = check_calibration(&bad, Time::from_ps(15.0));
        assert!(!health.is_healthy(), "{health:?}");
    }

    #[test]
    fn mux_select_stuck_limits_reachable_taps() {
        let fault = MuxSelectFault::from_plan(&[FaultKind::MuxSelectStuck {
            line: 1,
            level: true,
        }]);
        assert!(fault.is_faulty());
        // Select bit 1 stuck high: taps 0/1 alias to 2/3.
        assert_eq!(fault.effective_tap(0), 2);
        assert_eq!(fault.effective_tap(1), 3);
        assert_eq!(fault.effective_tap(2), 2);
        assert_eq!(fault.effective_tap(3), 3);
        assert_eq!(fault.reachable_taps(), vec![2, 3]);
        assert!(!MuxSelectFault::default().is_faulty());
        assert_eq!(MuxSelectFault::default().reachable_taps(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn config_faults_apply_and_others_are_identity() {
        let cfg = ModelConfig::paper_prototype();
        let tapped = FaultKind::TapDeviation {
            tap: 2,
            extra: Time::from_ps(12.0),
        }
        .apply_to_config(&cfg);
        let expected = cfg.coarse_tap_deviations[2] + Time::from_ps(12.0);
        assert_eq!(tapped.coarse_tap_deviations[2], expected);
        let hot = FaultKind::TempStep { delta_k: 30.0 }.apply_to_config(&cfg);
        assert_eq!(hot, cfg.at_temperature_offset(30.0, &TempCo::default()));
        let same = FaultKind::DeadDriver { channel: 0 }.apply_to_config(&cfg);
        assert_eq!(same, cfg);
    }

    #[test]
    fn transient_faults_distinguish_dead_from_weak() {
        let t = TransientFaults::from_plan(&[
            FaultKind::DeadDriver { channel: 2 },
            FaultKind::WeakDriver {
                channel: 5,
                fail_attempts: 2,
            },
        ]);
        assert!(t.fails(2, 1) && t.fails(2, 1_000_000));
        assert!(t.fails(5, 1) && t.fails(5, 2));
        assert!(!t.fails(5, 3));
        assert!(!t.fails(0, 1));
        assert_eq!(t.dead_channels(), vec![2]);
        assert!(!TransientFaults::default().fails(2, 1));
    }

    #[test]
    fn labels_and_params_are_stable() {
        let f = FaultKind::CalibrationSpike {
            point: 4,
            spike: Time::from_ps(80.0),
        };
        assert_eq!(f.label(), "calibration_spike");
        assert_eq!(f.param(), "point=4;spike_ps=80");
        assert_eq!(f.to_string(), "calibration_spike(point=4;spike_ps=80)");
        let w = FaultKind::WeakDriver {
            channel: 5,
            fail_attempts: 2,
        };
        assert_eq!(w.param(), "channel=5;fails=2");
    }

    #[test]
    fn net_chaos_strikes_are_seeded_and_masked_by_the_kill_switch() {
        set_enabled(true);
        let plan = NetChaos::new(11);
        let first: Vec<_> = (0..16).map(|i| plan.kind_for(i)).collect();
        assert_eq!(
            first,
            (0..16).map(|i| plan.kind_for(i)).collect::<Vec<_>>(),
            "same seed must replay the same strike sequence"
        );
        // Every fault kind eventually appears.
        for kind in [
            NetFaultKind::SlowLoris,
            NetFaultKind::MidLineDisconnect,
            NetFaultKind::ShortWrite,
            NetFaultKind::StalledReader,
        ] {
            assert!(
                (0..64).any(|i| plan.kind_for(i) == Some(kind)),
                "{kind} never struck"
            );
        }
        // A different seed reorders the strikes.
        let other = NetChaos::new(12);
        assert!(
            (0..64).any(|i| other.kind_for(i) != plan.kind_for(i)),
            "seed is ignored"
        );
        set_enabled(false);
        assert_eq!(plan.kind_for(0), None, "kill switch must mask the plan");
        set_enabled(true);
    }
}
