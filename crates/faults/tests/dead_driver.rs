//! A dead-driver channel must surface as a typed characterization error,
//! never a worker panic (ISSUE 6 satellite: the characterization path
//! used to `unwrap()` on degenerate waveforms).

use vardelay_analog::{try_measure_delay_table, AnalogBlock, CharacterizeError};
use vardelay_faults::{FaultKind, TransientFaults};
use vardelay_units::{Time, Voltage};
use vardelay_waveform::{RenderConfig, Waveform};

/// A driver whose output is stuck flat — the waveform-domain face of
/// [`FaultKind::DeadDriver`].
struct DeadDriverBlock;

impl AnalogBlock for DeadDriverBlock {
    fn process(&mut self, input: &Waveform) -> Waveform {
        Waveform::zeros(input.t0(), input.dt(), input.len())
    }

    fn name(&self) -> &str {
        "dead-driver"
    }
}

#[test]
fn a_dead_driver_channel_yields_err_not_a_panic() {
    // The fault plan marks channel 0 dead forever…
    let faults = TransientFaults::from_plan(&[FaultKind::DeadDriver { channel: 0 }]);
    assert!(faults.fails(0, 1), "a dead driver fails every attempt");
    assert!(faults.fails(0, u32::MAX - 1));

    // …and characterizing the dead chain reports the loss as a typed
    // error instead of panicking the measuring worker.
    let build = |_v: Voltage| -> Box<dyn AnalogBlock + Send> { Box::new(DeadDriverBlock) };
    let result = try_measure_delay_table(
        &build,
        &[Voltage::ZERO],
        &[Time::from_ps(500.0)],
        &RenderConfig::default_source(),
    );
    match result {
        Err(CharacterizeError::SignalLost {
            vctrl,
            interval,
            edges,
        }) => {
            assert_eq!(vctrl, Voltage::ZERO);
            assert_eq!(interval, Time::from_ps(500.0));
            assert_eq!(edges, 0, "a flat trace has no crossings");
        }
        other => panic!("expected SignalLost, got {other:?}"),
    }
}

#[test]
fn a_healthy_chain_still_measures_through_the_fallible_path() {
    let build = |_v: Voltage| -> Box<dyn AnalogBlock + Send> {
        Box::new(vardelay_analog::TransmissionLine::new(Time::from_ps(15.0)))
    };
    let table = try_measure_delay_table(
        &build,
        &[Voltage::ZERO],
        &[Time::from_ps(500.0)],
        &RenderConfig::default_source(),
    )
    .expect("a healthy line characterizes");
    let d = table.delay_at(Voltage::ZERO, Time::from_ps(500.0));
    assert!((d.as_ps() - 15.0).abs() < 0.5, "measured {d}");
}
