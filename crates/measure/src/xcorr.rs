//! Cross-correlation delay estimation between waveforms.
//!
//! The crossing-based [`crate::mean_delay`] needs clean threshold
//! crossings; when a channel attenuates or distorts the signal badly, the
//! more robust estimate is the lag that maximizes the cross-correlation of
//! the two traces — the same measurement a scope's "delay" function makes.
//! The two estimators cross-validate each other in the integration tests.

use vardelay_units::Time;
use vardelay_waveform::Waveform;

/// Estimates the delay from `reference` to `delayed` as the lag maximizing
/// their normalized cross-correlation, with parabolic sub-sample
/// interpolation around the peak.
///
/// `max_lag` bounds the search (both directions). Returns `None` when
/// either trace is shorter than 8 samples, the traces have different
/// sample periods, or the correlation is degenerate (a constant trace).
pub fn xcorr_delay(reference: &Waveform, delayed: &Waveform, max_lag: Time) -> Option<Time> {
    let dt = reference.dt();
    if (delayed.dt() - dt).abs() > Time::from_fs(1.0) {
        return None;
    }
    let a = reference.samples();
    let b = delayed.samples();
    if a.len() < 8 || b.len() < 8 {
        return None;
    }
    let mean_a = a.iter().sum::<f64>() / a.len() as f64;
    let mean_b = b.iter().sum::<f64>() / b.len() as f64;
    // Reject constant traces outright (their correlation is undefined up
    // to floating-point dust).
    let var = |s: &[f64], m: f64| s.iter().map(|x| (x - m).powi(2)).sum::<f64>() / s.len() as f64;
    if var(a, mean_a) < 1e-12 || var(b, mean_b) < 1e-12 {
        return None;
    }

    // The delayed trace's axis offset contributes directly.
    let axis_shift = delayed.t0() - reference.t0();
    let max_k = ((max_lag / dt).abs().round() as i64).max(1);

    let mut best_k = 0i64;
    let mut best_r = f64::NEG_INFINITY;
    let mut scores: Vec<(i64, f64)> = Vec::with_capacity((2 * max_k + 1) as usize);
    for k in -max_k..=max_k {
        // Correlate a[i] with b[i + k]: positive k means b's content lags
        // (is delayed) by k samples relative to a's.
        let mut num = 0.0f64;
        let mut den_a = 0.0f64;
        let mut den_b = 0.0f64;
        let n = a.len().min(b.len());
        for (i, &ai) in a.iter().enumerate().take(n) {
            let j = i as i64 + k;
            if j < 0 || j >= b.len() as i64 {
                continue;
            }
            let x = ai - mean_a;
            let y = b[j as usize] - mean_b;
            num += x * y;
            den_a += x * x;
            den_b += y * y;
        }
        let den = (den_a * den_b).sqrt();
        let r = if den <= 0.0 {
            f64::NEG_INFINITY
        } else {
            num / den
        };
        scores.push((k, r));
        if r > best_r {
            best_r = r;
            best_k = k;
        }
    }
    if !best_r.is_finite() {
        return None;
    }

    // Parabolic refinement over the three points around the peak.
    let at = |k: i64| -> Option<f64> {
        scores
            .iter()
            .find(|&&(kk, _)| kk == k)
            .map(|&(_, r)| r)
            .filter(|r| r.is_finite())
    };
    let frac = match (at(best_k - 1), at(best_k + 1)) {
        (Some(l), Some(r)) => {
            let denom = l - 2.0 * best_r + r;
            if denom.abs() < 1e-12 {
                0.0
            } else {
                0.5 * (l - r) / denom
            }
        }
        _ => 0.0,
    };
    Some(axis_shift + dt * (best_k as f64 + frac.clamp(-0.5, 0.5)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vardelay_siggen::{BitPattern, EdgeStream};
    use vardelay_units::{BitRate, Voltage};
    use vardelay_waveform::{OnePole, RenderConfig};

    fn test_wave() -> Waveform {
        let stream = EdgeStream::nrz(&BitPattern::prbs7(1, 64), BitRate::from_gbps(2.0));
        let cfg = RenderConfig::new(
            Time::from_ps(1.0),
            Voltage::from_mv(800.0),
            Time::from_ps(60.0),
        );
        Waveform::render(&stream, &cfg)
    }

    #[test]
    fn axis_shift_is_recovered_exactly() {
        let a = test_wave();
        let b = a.delayed(Time::from_ps(137.0));
        let d = xcorr_delay(&a, &b, Time::from_ps(500.0)).expect("well-posed");
        assert!((d.as_ps() - 137.0).abs() < 0.01, "d {d}");
    }

    #[test]
    fn sample_shift_with_subsample_refinement() {
        // Shift by re-sampling: b[i] = a at t - 41.4 ps, on the same axis.
        let a = test_wave();
        let shift = Time::from_ps(41.4);
        let samples: Vec<f64> = (0..a.len())
            .map(|i| a.value_at(a.time_of(i) - shift))
            .collect();
        let b = Waveform::new(a.t0(), a.dt(), samples);
        let d = xcorr_delay(&a, &b, Time::from_ps(200.0)).expect("well-posed");
        assert!((d.as_ps() - 41.4).abs() < 0.5, "d {d}");
    }

    #[test]
    fn robust_to_attenuation_and_filtering() {
        let a = test_wave();
        let mut b = a.delayed(Time::from_ps(80.0));
        b.scale(0.2);
        OnePole::with_corner(vardelay_units::Frequency::from_ghz(3.0)).apply(&mut b);
        let d = xcorr_delay(&a, &b, Time::from_ps(400.0)).expect("well-posed");
        // The pole adds its own group delay (~tau = 53 ps).
        assert!(
            (d.as_ps() - 80.0) > 10.0 && (d.as_ps() - 80.0) < 120.0,
            "d {d}"
        );
    }

    #[test]
    fn degenerate_inputs_are_none() {
        let a = test_wave();
        let flat = Waveform::new(a.t0(), a.dt(), vec![0.3; a.len()]);
        assert!(xcorr_delay(&a, &flat, Time::from_ps(100.0)).is_none());
        let short = Waveform::new(a.t0(), a.dt(), vec![0.0; 4]);
        assert!(xcorr_delay(&a, &short, Time::from_ps(100.0)).is_none());
        let other_dt = Waveform::new(a.t0(), a.dt() * 2.0, vec![0.0; 100]);
        assert!(xcorr_delay(&a, &other_dt, Time::from_ps(100.0)).is_none());
    }
}
