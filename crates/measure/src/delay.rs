//! Delay measurement between two edge streams.

use vardelay_siggen::EdgeStream;
use vardelay_units::Time;

/// Error returned by [`mean_delay`] when streams cannot be paired.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MeasureDelayError {
    /// The streams have different edge counts and cannot be paired 1:1.
    LengthMismatch {
        /// Edge count of the reference stream.
        reference: usize,
        /// Edge count of the delayed stream.
        delayed: usize,
    },
    /// A paired edge has a different polarity in the two streams.
    PolarityMismatch {
        /// Index of the first mismatching pair.
        index: usize,
    },
    /// Both streams are empty: no delay is defined.
    Empty,
}

impl core::fmt::Display for MeasureDelayError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MeasureDelayError::LengthMismatch { reference, delayed } => write!(
                f,
                "edge counts differ: reference has {reference}, delayed has {delayed}"
            ),
            MeasureDelayError::PolarityMismatch { index } => {
                write!(f, "edge polarity differs at pair {index}")
            }
            MeasureDelayError::Empty => write!(f, "streams contain no edges"),
        }
    }
}

impl std::error::Error for MeasureDelayError {}

/// Measures the mean propagation delay from `reference` to `delayed` by
/// pairing edges index-by-index — the standard scope measurement of "how
/// far did the crossing move".
///
/// # Errors
///
/// Returns an error if the streams have different lengths, mismatched
/// polarities, or no edges.
///
/// # Examples
///
/// ```
/// use vardelay_measure::mean_delay;
/// use vardelay_siggen::{BitPattern, EdgeStream};
/// use vardelay_units::{BitRate, Time};
///
/// let a = EdgeStream::nrz(&BitPattern::clock(10), BitRate::from_gbps(1.0));
/// let b = a.delayed(Time::from_ps(47.0));
/// let d = mean_delay(&a, &b)?;
/// assert!((d.as_ps() - 47.0).abs() < 1e-9);
/// # Ok::<(), vardelay_measure::MeasureDelayError>(())
/// ```
pub fn mean_delay(reference: &EdgeStream, delayed: &EdgeStream) -> Result<Time, MeasureDelayError> {
    if reference.len() != delayed.len() {
        return Err(MeasureDelayError::LengthMismatch {
            reference: reference.len(),
            delayed: delayed.len(),
        });
    }
    if reference.is_empty() {
        return Err(MeasureDelayError::Empty);
    }
    let mut sum = Time::ZERO;
    for (i, (a, b)) in reference.edges().iter().zip(delayed.edges()).enumerate() {
        if a.kind != b.kind {
            return Err(MeasureDelayError::PolarityMismatch { index: i });
        }
        sum += b.time - a.time;
    }
    Ok(sum / reference.len() as f64)
}

/// Per-pair delays between two streams (same pairing rules as
/// [`mean_delay`]), for spread/linearity analysis.
///
/// # Errors
///
/// Same conditions as [`mean_delay`].
pub fn delay_sequence(
    reference: &EdgeStream,
    delayed: &EdgeStream,
) -> Result<Vec<Time>, MeasureDelayError> {
    if reference.len() != delayed.len() {
        return Err(MeasureDelayError::LengthMismatch {
            reference: reference.len(),
            delayed: delayed.len(),
        });
    }
    if reference.is_empty() {
        return Err(MeasureDelayError::Empty);
    }
    reference
        .edges()
        .iter()
        .zip(delayed.edges())
        .enumerate()
        .map(|(i, (a, b))| {
            if a.kind != b.kind {
                Err(MeasureDelayError::PolarityMismatch { index: i })
            } else {
                Ok(b.time - a.time)
            }
        })
        .collect()
}

/// Measures the mean delay over the steady-state tail of a capture,
/// tolerating edges lost at either end of `delayed` (start-up transients,
/// window cut-off): pairs the last `n` polarity-matching edges after
/// skipping `warmup` pairs.
///
/// This is the robust pairing used when measuring a processed waveform
/// whose chain delay may push the final transition past the capture
/// window.
///
/// # Errors
///
/// Returns [`MeasureDelayError::Empty`] if no polarity-aligned tail of at
/// least one pair exists.
pub fn tail_mean_delay(
    reference: &EdgeStream,
    delayed: &EdgeStream,
    warmup: usize,
) -> Result<Time, MeasureDelayError> {
    let (r, d) = (reference.edges(), delayed.edges());
    if r.is_empty() || d.is_empty() {
        return Err(MeasureDelayError::Empty);
    }
    // If the delayed stream lost its final edge to the capture window, its
    // last polarity differs; trim the reference tail until they align.
    let mut r_end = r.len();
    while r_end > 0 && r[r_end - 1].kind != d[d.len() - 1].kind {
        r_end -= 1;
    }
    if r_end == 0 {
        return Err(MeasureDelayError::Empty);
    }
    let n = r_end
        .min(d.len())
        .saturating_sub(warmup)
        .max(1)
        .min(r_end.min(d.len()));
    let r_tail = &r[r_end - n..r_end];
    let d_tail = &d[d.len() - n..];
    let mut sum = Time::ZERO;
    for (i, (a, b)) in r_tail.iter().zip(d_tail).enumerate() {
        if a.kind != b.kind {
            return Err(MeasureDelayError::PolarityMismatch { index: i });
        }
        sum += b.time - a.time;
    }
    Ok(sum / n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vardelay_siggen::{BitPattern, GaussianRj, JitterModel};
    use vardelay_units::BitRate;

    fn clock(n: usize) -> EdgeStream {
        EdgeStream::nrz(&BitPattern::clock(n), BitRate::from_gbps(1.0))
    }

    #[test]
    fn exact_shift_is_recovered() {
        let a = clock(100);
        let b = a.delayed(Time::from_ps(33.0));
        assert!((mean_delay(&a, &b).unwrap().as_ps() - 33.0).abs() < 1e-9);
    }

    #[test]
    fn jitter_averages_out() {
        let a = clock(20_000);
        let shifted = a.delayed(Time::from_ps(50.0));
        let b = GaussianRj::new(Time::from_ps(2.0), 3).apply(&shifted);
        let d = mean_delay(&a, &b).unwrap();
        assert!((d.as_ps() - 50.0).abs() < 0.1, "d = {d}");
    }

    #[test]
    fn length_mismatch_reported() {
        let a = clock(10);
        let b = clock(12);
        assert_eq!(
            mean_delay(&a, &b),
            Err(MeasureDelayError::LengthMismatch {
                reference: a.len(),
                delayed: b.len()
            })
        );
    }

    #[test]
    fn empty_reported() {
        let e = EdgeStream::nrz(
            &BitPattern::from_str("0000").unwrap(),
            BitRate::from_gbps(1.0),
        );
        assert_eq!(mean_delay(&e, &e), Err(MeasureDelayError::Empty));
    }

    #[test]
    fn sequence_matches_mean() {
        let a = clock(50);
        let b = a.delayed(Time::from_ps(10.0));
        let seq = delay_sequence(&a, &b).unwrap();
        assert_eq!(seq.len(), a.len());
        let mean: Time = seq.iter().copied().sum::<Time>() / seq.len() as f64;
        assert!((mean.as_ps() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn tail_mean_tolerates_lost_trailing_edge() {
        let a = clock(20);
        let full = a.delayed(Time::from_ps(40.0));
        // Simulate the capture window cutting the final edge.
        let cut = EdgeStream::from_parts(
            full.edges()[..full.len() - 1].to_vec(),
            full.start(),
            full.end(),
            full.initial_high(),
            full.ui(),
        );
        let d = tail_mean_delay(&a, &cut, 4).unwrap();
        assert!((d.as_ps() - 40.0).abs() < 1e-9, "d {d}");
    }

    #[test]
    fn tail_mean_tolerates_lost_leading_edge() {
        let a = clock(20);
        let full = a.delayed(Time::from_ps(40.0));
        let cut = full.window(full.edges()[1].time, full.end() + Time::from_ps(1.0));
        let d = tail_mean_delay(&a, &cut, 4).unwrap();
        assert!((d.as_ps() - 40.0).abs() < 1e-9, "d {d}");
    }

    #[test]
    fn error_messages_are_informative() {
        let err = MeasureDelayError::LengthMismatch {
            reference: 3,
            delayed: 5,
        };
        assert!(err.to_string().contains("3"));
        assert!(err.to_string().contains("5"));
    }
}
