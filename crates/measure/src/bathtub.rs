//! Bathtub curves: BER versus sampling position.
//!
//! Models the folded crossing population as Gaussian (per side) and
//! extrapolates the tail probability that an edge invades the sampling
//! instant — the standard receiver-margin analysis that motivates keeping
//! added jitter under a few picoseconds.

use crate::jitter::inv_norm_cdf;
use vardelay_units::Time;

/// One point of a bathtub curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BathtubPoint {
    /// Sampling position within the unit interval, from the left crossing.
    pub position: Time,
    /// Estimated bit-error ratio when sampling there.
    pub ber: f64,
}

/// Complementary normal CDF via `erfc`-style series on `inv` — here we use
/// the relation `Q(x) = 0.5·erfc(x/√2)` with a rational `erfc`.
fn normal_q(x: f64) -> f64 {
    // Abramowitz & Stegun 7.1.26 rational approximation of erf.
    let z = x / core::f64::consts::SQRT_2;
    let sign = if z < 0.0 { -1.0 } else { 1.0 };
    let z = z.abs();
    let t = 1.0 / (1.0 + 0.3275911 * z);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-z * z).exp();
    let erf = sign * y;
    0.5 * (1.0 - erf)
}

/// Computes a bathtub curve from the folded crossing population of an eye.
///
/// `offsets` are crossing offsets around the bit boundary (as produced by
/// [`EyeDiagram::crossing_offsets`]); `ui` is the unit interval; `points`
/// is the number of sampling positions across the UI.
///
/// Returns an empty curve if fewer than two crossings are available.
///
/// [`EyeDiagram::crossing_offsets`]: vardelay_waveform::EyeDiagram::crossing_offsets
pub fn bathtub_curve(offsets: &[Time], ui: Time, points: usize) -> Vec<BathtubPoint> {
    if offsets.len() < 2 || points == 0 {
        return Vec::new();
    }
    let n = offsets.len() as f64;
    let mean = offsets.iter().map(|t| t.as_s()).sum::<f64>() / n;
    let var = offsets
        .iter()
        .map(|t| (t.as_s() - mean).powi(2))
        .sum::<f64>()
        / n;
    let sigma = var.sqrt().max(1e-18);
    let ui_s = ui.as_s();

    (0..points)
        .map(|i| {
            let x = ui_s * (i as f64 + 0.5) / points as f64;
            // Left crossing population centred at `mean`, right at
            // `mean + UI`; an error occurs when either invades x.
            let left = normal_q((x - mean) / sigma);
            let right = normal_q((mean + ui_s - x) / sigma);
            BathtubPoint {
                position: Time::from_s(x),
                ber: (left + right).min(1.0),
            }
        })
        .collect()
}

/// Horizontal eye opening at a target BER from the Gaussian-tail model:
/// the span of sampling positions whose estimated BER stays below `ber`.
///
/// Returns `None` if no position meets the target or the population is too
/// small.
///
/// # Panics
///
/// Panics unless `0 < ber < 0.5`.
pub fn eye_width_at_ber(offsets: &[Time], ui: Time, ber: f64) -> Option<Time> {
    assert!(ber > 0.0 && ber < 0.5, "BER must be in (0, 0.5)");
    if offsets.len() < 2 {
        return None;
    }
    let n = offsets.len() as f64;
    let mean = offsets.iter().map(|t| t.as_s()).sum::<f64>() / n;
    let var = offsets
        .iter()
        .map(|t| (t.as_s() - mean).powi(2))
        .sum::<f64>()
        / n;
    let sigma = var.sqrt().max(1e-18);
    let q = -inv_norm_cdf(ber);
    let width = ui.as_s() - 2.0 * q * sigma;
    if width <= 0.0 {
        None
    } else {
        Some(Time::from_s(width))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vardelay_siggen::SplitMix64;

    fn gaussian_offsets(sigma_ps: f64, n: usize, seed: u64) -> Vec<Time> {
        let mut rng = SplitMix64::new(seed);
        (0..n)
            .map(|_| Time::from_ps(rng.gaussian() * sigma_ps))
            .collect()
    }

    #[test]
    fn bathtub_is_deep_in_the_middle() {
        let offsets = gaussian_offsets(2.0, 10_000, 1);
        let ui = Time::from_ps(156.25);
        let curve = bathtub_curve(&offsets, ui, 64);
        assert_eq!(curve.len(), 64);
        let mid = curve[32].ber;
        let edge = curve[0].ber;
        assert!(mid < 1e-12, "mid {mid}");
        assert!(edge > 0.1, "edge {edge}");
    }

    #[test]
    fn bathtub_is_monotone_from_edges() {
        let offsets = gaussian_offsets(3.0, 5_000, 2);
        let curve = bathtub_curve(&offsets, Time::from_ps(200.0), 40);
        for w in curve.windows(2).take(19) {
            assert!(w[1].ber <= w[0].ber * 1.0000001);
        }
    }

    #[test]
    fn width_at_ber_shrinks_with_jitter() {
        let ui = Time::from_ps(156.25);
        let tight = eye_width_at_ber(&gaussian_offsets(1.0, 5_000, 3), ui, 1e-12).unwrap();
        let loose = eye_width_at_ber(&gaussian_offsets(4.0, 5_000, 4), ui, 1e-12).unwrap();
        assert!(tight > loose);
        // Analytic check: width = UI − 2·7.034·σ.
        let expect = 156.25 - 2.0 * 7.034 * 1.0;
        assert!((tight.as_ps() - expect).abs() < 2.0, "{tight} vs {expect}");
    }

    #[test]
    fn closed_eye_reports_none() {
        let ui = Time::from_ps(20.0);
        assert!(eye_width_at_ber(&gaussian_offsets(4.0, 1_000, 5), ui, 1e-12).is_none());
    }

    #[test]
    fn tiny_populations_yield_empty_curve() {
        assert!(bathtub_curve(&[Time::ZERO], Time::from_ps(100.0), 10).is_empty());
    }

    #[test]
    fn normal_q_sanity() {
        assert!((normal_q(0.0) - 0.5).abs() < 1e-6);
        assert!(normal_q(7.0) < 1e-11);
        assert!((normal_q(-7.0) - 1.0).abs() < 1e-11);
    }
}
