//! Fixed-bin histograms with exact-sample percentiles.

/// A fixed-range, fixed-bin-count histogram that also retains its raw
/// samples for exact order statistics.
///
/// Retaining samples costs memory but keeps percentiles exact — the right
/// trade for captures of at most a few hundred thousand edges.
///
/// # Examples
///
/// ```
/// use vardelay_measure::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 10);
/// for x in [1.0, 2.0, 2.5, 9.0] {
///     h.add(x);
/// }
/// assert_eq!(h.total(), 4);
/// assert_eq!(h.count_in_bin(2), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    samples: Vec<f64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram spanning `[lo, hi)` with `bins` equal bins.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(lo < hi, "histogram range must be non-empty");
        assert!(bins > 0, "histogram needs at least one bin");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            samples: Vec::new(),
            underflow: 0,
            overflow: 0,
        }
    }

    /// Creates a histogram auto-ranged to the data with a 5 % margin.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or `bins == 0`.
    pub fn auto(data: &[f64], bins: usize) -> Self {
        assert!(!data.is_empty(), "auto-ranged histogram needs data");
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &x in data {
            lo = lo.min(x);
            hi = hi.max(x);
        }
        let margin = ((hi - lo) * 0.05).max(f64::MIN_POSITIVE);
        let mut h = Histogram::new(lo - margin, hi + margin, bins);
        for &x in data {
            h.add(x);
        }
        h
    }

    /// Adds a sample. Values outside the range land in under/overflow.
    pub fn add(&mut self, x: f64) {
        self.samples.push(x);
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let last = self.counts.len() - 1;
            let bin = ((x - self.lo) / (self.hi - self.lo) * self.counts.len() as f64) as usize;
            self.counts[bin.min(last)] += 1;
        }
    }

    /// Adds all samples from an iterator.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.add(x);
        }
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Count in bin `i`.
    pub fn count_in_bin(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Centre value of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + w * (i as f64 + 0.5)
    }

    /// Total samples recorded, including under/overflow.
    pub fn total(&self) -> u64 {
        self.samples.len() as u64
    }

    /// Samples below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples at or above the range end.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Mean of all recorded samples (`None` if empty).
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        Some(self.samples.iter().sum::<f64>() / self.samples.len() as f64)
    }

    /// Population standard deviation (`None` if empty).
    pub fn std_dev(&self) -> Option<f64> {
        let mean = self.mean()?;
        let var = self.samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>()
            / self.samples.len() as f64;
        Some(var.sqrt())
    }

    /// Peak-to-peak span of all recorded samples (`None` if empty).
    pub fn peak_to_peak(&self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let lo = self.samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = self
            .samples
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        Some(hi - lo)
    }

    /// Exact percentile by nearest-rank over the retained samples.
    /// `q` in `[0, 1]`; `None` if empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn percentile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "percentile must be in [0, 1]");
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(f64::total_cmp);
        let rank = ((q * (sorted.len() - 1) as f64).round()) as usize;
        Some(sorted[rank])
    }

    /// The retained raw samples, in insertion order.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binning_and_flows() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.extend([-1.0, 0.0, 1.9, 5.0, 9.99, 10.0, 42.0]);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.count_in_bin(0), 2); // 0.0, 1.9
        assert_eq!(h.count_in_bin(2), 1); // 5.0
        assert_eq!(h.count_in_bin(4), 1); // 9.99
        assert_eq!(h.total(), 7);
    }

    #[test]
    fn moments() {
        let mut h = Histogram::new(-10.0, 10.0, 4);
        h.extend([1.0, 2.0, 3.0, 4.0]);
        assert!((h.mean().unwrap() - 2.5).abs() < 1e-12);
        let sd = h.std_dev().unwrap();
        assert!((sd - (1.25f64).sqrt()).abs() < 1e-12);
        assert!((h.peak_to_peak().unwrap() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn percentiles_are_exact() {
        let mut h = Histogram::new(0.0, 100.0, 10);
        h.extend((0..=100).map(f64::from));
        assert_eq!(h.percentile(0.0), Some(0.0));
        assert_eq!(h.percentile(0.5), Some(50.0));
        assert_eq!(h.percentile(1.0), Some(100.0));
    }

    #[test]
    fn auto_ranging_covers_data() {
        let data = [3.0, 7.0, 5.0];
        let h = Histogram::auto(&data, 8);
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.overflow(), 0);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn bin_centers() {
        let h = Histogram::new(0.0, 10.0, 5);
        assert!((h.bin_center(0) - 1.0).abs() < 1e-12);
        assert!((h.bin_center(4) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn empty_statistics_are_none() {
        let h = Histogram::new(0.0, 1.0, 2);
        assert!(h.mean().is_none());
        assert!(h.std_dev().is_none());
        assert!(h.peak_to_peak().is_none());
        assert!(h.percentile(0.5).is_none());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn inverted_range_rejected() {
        let _ = Histogram::new(1.0, 1.0, 4);
    }
}
