//! Labelled x/y series from parameter sweeps.

use serde::{Deserialize, Serialize};

/// A labelled series of `(x, y)` points, the output shape of every sweep
/// experiment (delay vs Vctrl, range vs frequency, injected jitter vs noise
/// amplitude, …).
///
/// # Examples
///
/// ```
/// use vardelay_measure::Series;
///
/// let mut s = Series::new("4-stage", "freq_ghz", "range_ps");
/// s.push(0.5, 56.0);
/// s.push(6.4, 23.5);
/// assert_eq!(s.len(), 2);
/// assert!((s.y_max().unwrap() - 56.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Human-readable curve label (e.g. `"4-stage"`).
    pub label: String,
    /// Name and unit of the x axis (e.g. `"vctrl_v"`).
    pub x_label: String,
    /// Name and unit of the y axis (e.g. `"delay_ps"`).
    pub y_label: String,
    /// X coordinates, in sweep order.
    pub xs: Vec<f64>,
    /// Y coordinates, in sweep order.
    pub ys: Vec<f64>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(label: &str, x_label: &str, y_label: &str) -> Self {
        Series {
            label: label.to_owned(),
            x_label: x_label.to_owned(),
            y_label: y_label.to_owned(),
            xs: Vec::new(),
            ys: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.xs.push(x);
        self.ys.push(y);
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Returns `true` if the series holds no points.
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Smallest y value.
    pub fn y_min(&self) -> Option<f64> {
        self.ys.iter().copied().reduce(f64::min)
    }

    /// Largest y value.
    pub fn y_max(&self) -> Option<f64> {
        self.ys.iter().copied().reduce(f64::max)
    }

    /// y span (max − min).
    pub fn y_range(&self) -> Option<f64> {
        Some(self.y_max()? - self.y_min()?)
    }

    /// Linearly interpolates y at `x` (requires xs sorted ascending);
    /// clamps outside the span. `None` if empty.
    pub fn interpolate(&self, x: f64) -> Option<f64> {
        if self.xs.is_empty() {
            return None;
        }
        if x <= self.xs[0] {
            return Some(self.ys[0]);
        }
        let last = self.xs.len() - 1;
        if x >= self.xs[last] {
            return Some(self.ys[last]);
        }
        let i = self.xs.partition_point(|&v| v <= x) - 1;
        let (x0, x1) = (self.xs[i], self.xs[i + 1]);
        let (y0, y1) = (self.ys[i], self.ys[i + 1]);
        if (x1 - x0).abs() < 1e-300 {
            return Some(y0);
        }
        Some(y0 + (y1 - y0) * (x - x0) / (x1 - x0))
    }

    /// Renders the series as CSV with a header row.
    pub fn to_csv(&self) -> String {
        let mut out = format!("{},{}\n", self.x_label, self.y_label);
        for (x, y) in self.xs.iter().zip(&self.ys) {
            out.push_str(&format!("{x:.6},{y:.6}\n"));
        }
        out
    }

    /// Returns `(x, y)` pairs.
    pub fn points(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.xs.iter().copied().zip(self.ys.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Series {
        let mut s = Series::new("test", "x", "y");
        s.push(0.0, 10.0);
        s.push(1.0, 30.0);
        s.push(2.0, 20.0);
        s
    }

    #[test]
    fn ranges() {
        let s = sample();
        assert_eq!(s.y_min(), Some(10.0));
        assert_eq!(s.y_max(), Some(30.0));
        assert_eq!(s.y_range(), Some(20.0));
    }

    #[test]
    fn interpolation_and_clamping() {
        let s = sample();
        assert_eq!(s.interpolate(0.5), Some(20.0));
        assert_eq!(s.interpolate(-1.0), Some(10.0));
        assert_eq!(s.interpolate(9.0), Some(20.0));
    }

    #[test]
    fn empty_series() {
        let s = Series::new("e", "x", "y");
        assert!(s.is_empty());
        assert!(s.y_min().is_none());
        assert!(s.interpolate(0.0).is_none());
    }

    #[test]
    fn csv_shape() {
        let csv = sample().to_csv();
        assert!(csv.starts_with("x,y\n"));
        assert_eq!(csv.lines().count(), 4);
    }

    #[test]
    fn serde_round_trip() {
        let s = sample();
        let json = serde_json_like(&s);
        assert!(json.contains("\"label\":\"test\""));
    }

    // Minimal structural check without depending on serde_json: serialize
    // through serde's derived impl via a tiny hand-rolled JSON writer is
    // out of scope, so just confirm the type implements the traits.
    fn serde_json_like(s: &Series) -> String {
        format!(
            "{{\"label\":\"{}\",\"points\":{}}}",
            s.label,
            s.len()
        )
    }
}
