//! Labelled x/y series from parameter sweeps.

/// Error returned by [`Series::from_csv`] when the text is not a series
/// CSV.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSeriesError {
    /// 1-based line number of the offending row (0 for a missing header).
    pub line: usize,
    /// What was wrong with it.
    pub reason: String,
}

impl core::fmt::Display for ParseSeriesError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "CSV line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for ParseSeriesError {}

/// A labelled series of `(x, y)` points, the output shape of every sweep
/// experiment (delay vs Vctrl, range vs frequency, injected jitter vs noise
/// amplitude, …).
///
/// # Examples
///
/// ```
/// use vardelay_measure::Series;
///
/// let mut s = Series::new("4-stage", "freq_ghz", "range_ps");
/// s.push(0.5, 56.0);
/// s.push(6.4, 23.5);
/// assert_eq!(s.len(), 2);
/// assert!((s.y_max().unwrap() - 56.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Human-readable curve label (e.g. `"4-stage"`).
    pub label: String,
    /// Name and unit of the x axis (e.g. `"vctrl_v"`).
    pub x_label: String,
    /// Name and unit of the y axis (e.g. `"delay_ps"`).
    pub y_label: String,
    /// X coordinates, in sweep order.
    pub xs: Vec<f64>,
    /// Y coordinates, in sweep order.
    pub ys: Vec<f64>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(label: &str, x_label: &str, y_label: &str) -> Self {
        Series {
            label: label.to_owned(),
            x_label: x_label.to_owned(),
            y_label: y_label.to_owned(),
            xs: Vec::new(),
            ys: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.xs.push(x);
        self.ys.push(y);
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Returns `true` if the series holds no points.
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Smallest y value. NaN points are skipped (a dropped sweep point
    /// must not poison the whole series); `None` if the series is empty
    /// or all-NaN.
    pub fn y_min(&self) -> Option<f64> {
        self.ys
            .iter()
            .copied()
            .filter(|y| !y.is_nan())
            .reduce(f64::min)
    }

    /// Largest y value. NaN points are skipped; `None` if the series is
    /// empty or all-NaN.
    pub fn y_max(&self) -> Option<f64> {
        self.ys
            .iter()
            .copied()
            .filter(|y| !y.is_nan())
            .reduce(f64::max)
    }

    /// y span (max − min).
    pub fn y_range(&self) -> Option<f64> {
        Some(self.y_max()? - self.y_min()?)
    }

    /// Linearly interpolates y at `x` (requires xs sorted ascending);
    /// clamps outside the span. `None` if empty.
    pub fn interpolate(&self, x: f64) -> Option<f64> {
        if self.xs.is_empty() {
            return None;
        }
        if x <= self.xs[0] {
            return Some(self.ys[0]);
        }
        let last = self.xs.len() - 1;
        if x >= self.xs[last] {
            return Some(self.ys[last]);
        }
        let i = self.xs.partition_point(|&v| v <= x) - 1;
        let (x0, x1) = (self.xs[i], self.xs[i + 1]);
        let (y0, y1) = (self.ys[i], self.ys[i + 1]);
        if (x1 - x0).abs() < 1e-300 {
            return Some(y0);
        }
        Some(y0 + (y1 - y0) * (x - x0) / (x1 - x0))
    }

    /// Renders the series as CSV with a header row.
    pub fn to_csv(&self) -> String {
        let mut out = format!("{},{}\n", self.x_label, self.y_label);
        for (x, y) in self.xs.iter().zip(&self.ys) {
            out.push_str(&format!("{x:.6},{y:.6}\n"));
        }
        out
    }

    /// Parses the output of [`Series::to_csv`] back into a series (labels
    /// from the header row, `label` from the argument since the CSV does
    /// not carry it).
    ///
    /// # Errors
    ///
    /// Returns [`ParseSeriesError`] on a missing/malformed header or any
    /// row that is not two comma-separated numbers.
    pub fn from_csv(label: &str, csv: &str) -> Result<Self, ParseSeriesError> {
        let mut lines = csv.lines();
        let header = lines.next().ok_or_else(|| ParseSeriesError {
            line: 0,
            reason: "missing header row".to_owned(),
        })?;
        let (x_label, y_label) = header.split_once(',').ok_or_else(|| ParseSeriesError {
            line: 1,
            reason: format!("header {header:?} is not \"x,y\""),
        })?;
        let mut series = Series::new(label, x_label, y_label);
        for (i, row) in lines.enumerate() {
            let line = i + 2;
            if row.is_empty() {
                continue;
            }
            let (xs, ys) = row.split_once(',').ok_or_else(|| ParseSeriesError {
                line,
                reason: format!("row {row:?} is not \"x,y\""),
            })?;
            let parse = |field: &str| {
                field.trim().parse::<f64>().map_err(|e| ParseSeriesError {
                    line,
                    reason: format!("bad number {field:?}: {e}"),
                })
            };
            series.push(parse(xs)?, parse(ys)?);
        }
        Ok(series)
    }

    /// Returns `(x, y)` pairs.
    pub fn points(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.xs.iter().copied().zip(self.ys.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Series {
        let mut s = Series::new("test", "x", "y");
        s.push(0.0, 10.0);
        s.push(1.0, 30.0);
        s.push(2.0, 20.0);
        s
    }

    #[test]
    fn ranges() {
        let s = sample();
        assert_eq!(s.y_min(), Some(10.0));
        assert_eq!(s.y_max(), Some(30.0));
        assert_eq!(s.y_range(), Some(20.0));
    }

    #[test]
    fn interpolation_and_clamping() {
        let s = sample();
        assert_eq!(s.interpolate(0.5), Some(20.0));
        assert_eq!(s.interpolate(-1.0), Some(10.0));
        assert_eq!(s.interpolate(9.0), Some(20.0));
    }

    #[test]
    fn empty_series() {
        let s = Series::new("e", "x", "y");
        assert!(s.is_empty());
        assert!(s.y_min().is_none());
        assert!(s.interpolate(0.0).is_none());
    }

    #[test]
    fn csv_shape() {
        let csv = sample().to_csv();
        assert!(csv.starts_with("x,y\n"));
        assert_eq!(csv.lines().count(), 4);
    }

    #[test]
    fn csv_round_trip() {
        let s = sample();
        let back = Series::from_csv("test", &s.to_csv()).expect("own CSV parses");
        assert_eq!(back.label, s.label);
        assert_eq!(back.x_label, s.x_label);
        assert_eq!(back.y_label, s.y_label);
        // to_csv prints 6 decimals, so round-tripping is exact for these
        // values.
        assert_eq!(back.xs, s.xs);
        assert_eq!(back.ys, s.ys);
    }

    #[test]
    fn csv_parse_errors_carry_line_numbers() {
        let missing = Series::from_csv("t", "").unwrap_err();
        assert_eq!(missing.line, 0);

        let bad_header = Series::from_csv("t", "just-one-column\n").unwrap_err();
        assert_eq!(bad_header.line, 1);

        let bad_row = Series::from_csv("t", "x,y\n1.0,2.0\nnot-a-number,3\n").unwrap_err();
        assert_eq!(bad_row.line, 3);
        assert!(bad_row.to_string().contains("line 3"), "{bad_row}");

        let not_two = Series::from_csv("t", "x,y\n42\n").unwrap_err();
        assert_eq!(not_two.line, 2);
    }

    #[test]
    fn nan_points_do_not_poison_extrema() {
        let mut s = Series::new("nan", "x", "y");
        s.push(0.0, f64::NAN);
        s.push(1.0, 5.0);
        s.push(2.0, -3.0);
        s.push(3.0, f64::NAN);
        assert_eq!(s.y_min(), Some(-3.0));
        assert_eq!(s.y_max(), Some(5.0));
        assert_eq!(s.y_range(), Some(8.0));
    }

    #[test]
    fn all_nan_series_has_no_extrema() {
        let mut s = Series::new("nan", "x", "y");
        s.push(0.0, f64::NAN);
        s.push(1.0, f64::NAN);
        assert_eq!(s.y_min(), None);
        assert_eq!(s.y_max(), None);
        assert_eq!(s.y_range(), None);
    }

    #[test]
    fn empty_series_full_behavior() {
        let s = Series::new("e", "x", "y");
        assert_eq!(s.len(), 0);
        assert!(s.is_empty());
        assert_eq!(s.y_range(), None);
        assert_eq!(s.points().count(), 0);
        // CSV of an empty series is just the header, and round-trips.
        let csv = s.to_csv();
        assert_eq!(csv, "x,y\n");
        let back = Series::from_csv("e", &csv).unwrap();
        assert!(back.is_empty());
    }
}
