//! Eye-mask compliance testing.
//!
//! Serial-link standards define a keep-out polygon in the (time, voltage)
//! plane; a compliant transmitter's eye must leave the mask untouched.
//! [`EyeMask`] tests a folded [`EyeDiagram`] raster against such a
//! polygon — the pass/fail check a production ATE runs after deskew.
//!
//! [`EyeDiagram`]: vardelay_waveform::EyeDiagram

use vardelay_units::Time;
use vardelay_waveform::EyeDiagram;

/// A convex keep-out polygon centred in the eye, in UI/volt coordinates
/// relative to the eye centre (`x` in UI, −0.5..0.5; `y` in volts).
#[derive(Debug, Clone, PartialEq)]
pub struct EyeMask {
    vertices: Vec<(f64, f64)>,
}

/// The outcome of a mask test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaskTestResult {
    /// Raster samples that landed inside the keep-out polygon.
    pub violations: u64,
    /// Raster samples examined.
    pub samples: u64,
}

impl MaskTestResult {
    /// `true` when no sample touched the mask.
    pub fn passes(&self) -> bool {
        self.violations == 0
    }
}

impl EyeMask {
    /// Builds a mask from polygon vertices in (UI, volt) coordinates
    /// relative to the eye centre, in counter-clockwise order.
    ///
    /// # Panics
    ///
    /// Panics for fewer than three vertices.
    pub fn new(vertices: Vec<(f64, f64)>) -> Self {
        assert!(vertices.len() >= 3, "a mask needs at least three vertices");
        EyeMask { vertices }
    }

    /// The standard hexagonal mask: half-width `w` UI at mid-level,
    /// half-height `h` volts, with points at `±w` UI on the zero line.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < w < 0.5` and `h > 0`.
    pub fn hexagon(w: f64, h: f64) -> Self {
        assert!(w > 0.0 && w < 0.5, "mask half-width must be in (0, 0.5) UI");
        assert!(h > 0.0, "mask half-height must be positive");
        EyeMask::new(vec![
            (-w, 0.0),
            (-w / 2.0, -h),
            (w / 2.0, -h),
            (w, 0.0),
            (w / 2.0, h),
            (-w / 2.0, h),
        ])
    }

    /// Point-in-polygon test (winding via ray casting) in mask
    /// coordinates.
    pub fn contains(&self, x_ui: f64, y_v: f64) -> bool {
        let mut inside = false;
        let n = self.vertices.len();
        let mut j = n - 1;
        for i in 0..n {
            let (xi, yi) = self.vertices[i];
            let (xj, yj) = self.vertices[j];
            if ((yi > y_v) != (yj > y_v)) && (x_ui < (xj - xi) * (y_v - yi) / (yj - yi) + xi) {
                inside = !inside;
            }
            j = i;
        }
        inside
    }

    /// Tests an accumulated eye against the mask. The mask is anchored at
    /// the eye centre: phase 0.25 of the 2-UI raster, zero volts.
    pub fn test(&self, eye: &EyeDiagram) -> MaskTestResult {
        let mut violations = 0u64;
        let mut samples = 0u64;
        let cols = eye.cols();
        let rows = eye.rows();
        for col in 0..cols {
            // Column phase in UI relative to the eye centre at 0.25 of
            // the 2-UI raster (= 0.5 UI).
            let phase_2ui = (col as f64 + 0.5) / cols as f64;
            let x_ui = phase_2ui * 2.0 - 0.5;
            for row in 0..rows {
                let count = eye.count_at(col, row) as u64;
                if count == 0 {
                    continue;
                }
                samples += count;
                // Row voltage: raster spans ±v_limit; EyeDiagram does not
                // expose v_limit directly, so rows map to [-1, 1] of the
                // configured limit — masks are therefore specified in the
                // same normalized unit when v_limit ≠ physical volts.
                let y = (row as f64 + 0.5) / rows as f64 * 2.0 - 1.0;
                if self.contains(x_ui, y * eye.v_limit()) {
                    violations += count;
                }
            }
        }
        MaskTestResult {
            violations,
            samples,
        }
    }

    /// Grows the mask horizontally by `margin` UI on each side and
    /// re-tests — the standard margin-search primitive.
    pub fn widened(&self, margin: f64) -> EyeMask {
        EyeMask::new(
            self.vertices
                .iter()
                .map(|&(x, y)| (x + margin * x.signum(), y))
                .collect(),
        )
    }

    /// The largest hexagon width (in UI) that still passes, by bisection
    /// over `0..0.5` at the given half-height; a horizontal eye-margin
    /// figure. Returns 0 if even a sliver fails.
    pub fn max_passing_width(eye: &EyeDiagram, h: f64) -> f64 {
        let passes = |w: f64| EyeMask::hexagon(w, h).test(eye).passes();
        if !passes(0.01) {
            return 0.0;
        }
        let (mut lo, mut hi) = (0.01, 0.499);
        if passes(hi) {
            return hi;
        }
        for _ in 0..20 {
            let mid = (lo + hi) / 2.0;
            if passes(mid) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    }
}

/// Converts a UI fraction to absolute time for reporting.
pub fn ui_fraction_to_time(frac: f64, ui: Time) -> Time {
    ui * frac
}

#[cfg(test)]
mod tests {
    use super::*;
    use vardelay_siggen::{BitPattern, EdgeStream, GaussianRj, JitterModel};
    use vardelay_units::BitRate;
    use vardelay_waveform::{RenderConfig, Waveform};

    fn eye_with_jitter(sigma_ps: f64) -> EyeDiagram {
        let rate = BitRate::from_gbps(4.8);
        let clean = EdgeStream::nrz(&BitPattern::prbs7(1, 400), rate);
        let stream = if sigma_ps > 0.0 {
            GaussianRj::new(Time::from_ps(sigma_ps), 7).apply(&clean)
        } else {
            clean
        };
        let wf = Waveform::render(&stream, &RenderConfig::default_source());
        let mut eye = EyeDiagram::new(rate.bit_period(), 96, 48, 0.5);
        eye.add_waveform(&wf);
        eye
    }

    #[test]
    fn point_in_polygon() {
        let hex = EyeMask::hexagon(0.3, 0.2);
        assert!(hex.contains(0.0, 0.0));
        assert!(hex.contains(0.25, 0.05));
        assert!(!hex.contains(0.4, 0.0));
        assert!(!hex.contains(0.0, 0.3));
    }

    #[test]
    fn clean_eye_passes_a_modest_mask() {
        let eye = eye_with_jitter(0.0);
        let result = EyeMask::hexagon(0.3, 0.15).test(&eye);
        assert!(result.passes(), "{result:?}");
        assert!(result.samples > 0);
    }

    #[test]
    fn jittery_eye_fails_a_wide_mask() {
        let eye = eye_with_jitter(12.0);
        let result = EyeMask::hexagon(0.42, 0.1).test(&eye);
        assert!(!result.passes(), "{result:?}");
    }

    #[test]
    fn margin_shrinks_with_jitter() {
        let clean = EyeMask::max_passing_width(&eye_with_jitter(0.0), 0.1);
        let dirty = EyeMask::max_passing_width(&eye_with_jitter(8.0), 0.1);
        assert!(clean > dirty, "clean {clean} vs dirty {dirty}");
        assert!(clean > 0.25, "clean margin {clean}");
    }

    #[test]
    fn widened_masks_are_monotone() {
        let eye = eye_with_jitter(4.0);
        let base = EyeMask::hexagon(0.2, 0.1);
        let v0 = base.test(&eye).violations;
        let v1 = base.widened(0.15).test(&eye).violations;
        assert!(v1 >= v0);
    }

    #[test]
    #[should_panic(expected = "three vertices")]
    fn degenerate_mask_rejected() {
        let _ = EyeMask::new(vec![(0.0, 0.0), (1.0, 1.0)]);
    }
}
