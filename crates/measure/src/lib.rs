//! Timing and jitter measurement suite.
//!
//! This crate is the suite's oscilloscope/TIA: every number the paper's
//! evaluation section reports — peak-to-peak total jitter, fine-delay
//! range, coarse tap positions, injected-jitter transfer, linearity of the
//! delay-vs-Vctrl curve — is computed here from edge populations or folded
//! eyes.
//!
//! * [`histogram`] — fixed-bin histograms with percentiles.
//! * [`jitter`] — TJ pk-pk / RMS and the dual-Dirac TJ@BER estimate.
//! * [`tie`] — time-interval-error extraction against an ideal bit clock.
//! * [`eye_metrics()`] — eye width/height from a folded [`EyeDiagram`].
//! * [`bathtub`] — BER-vs-sampling-position bathtub curves.
//! * [`delay`] — mean delay between two edge streams (matched pairing).
//! * [`linearity`] — least-squares fits, R², INL for transfer curves.
//! * [`sweep`] — labelled x/y series produced by parameter sweeps.
//! * [`report`] — plain-text tables for the experiment harness.
//!
//! [`EyeDiagram`]: vardelay_waveform::EyeDiagram

pub mod bathtub;
pub mod ddj;
pub mod delay;
pub mod eye_metrics;
pub mod histogram;
pub mod jitter;
pub mod linearity;
pub mod mask;
pub mod report;
pub mod spectrum;
pub mod sweep;
pub mod tie;
pub mod xcorr;

pub use bathtub::{bathtub_curve, BathtubPoint};
pub use ddj::{ddj_by_run_length, DdjDecomposition};
pub use delay::{delay_sequence, mean_delay, tail_mean_delay, MeasureDelayError};
pub use eye_metrics::{eye_metrics, EyeMetrics};
pub use histogram::Histogram;
pub use jitter::{dual_dirac_tj, JitterStats};
pub use linearity::{linear_fit, LinearFit};
pub use mask::{EyeMask, MaskTestResult};
pub use report::Table;
pub use spectrum::{separate_rj_pj, tie_spectrum, RjPjSplit, SpectralLine};
pub use sweep::{ParseSeriesError, Series};
pub use tie::{tie_sequence, tie_sequence_with_ui};
pub use xcorr::xcorr_delay;
