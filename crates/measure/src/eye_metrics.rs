//! Eye-opening metrics from a folded eye.

use vardelay_units::Time;
use vardelay_waveform::EyeDiagram;

/// Horizontal and vertical eye-opening figures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EyeMetrics {
    /// Horizontal opening: `UI − crossing peak-to-peak` (zero-clamped).
    pub width: Time,
    /// Vertical opening at the better of the two eye centres, in volts.
    pub height: f64,
    /// Peak-to-peak spread of the crossing population (the paper's TJ).
    pub crossing_peak_to_peak: Time,
    /// Mean crossing position relative to the bit boundary.
    pub crossing_mean: Time,
}

/// Computes [`EyeMetrics`] from an accumulated eye, or `None` if the eye
/// holds no crossings.
///
/// # Examples
///
/// ```
/// use vardelay_measure::eye_metrics;
/// use vardelay_siggen::{BitPattern, EdgeStream};
/// use vardelay_units::BitRate;
/// use vardelay_waveform::{EyeDiagram, RenderConfig, Waveform};
///
/// let rate = BitRate::from_gbps(4.8);
/// let s = EdgeStream::nrz(&BitPattern::prbs7(1, 254), rate);
/// let wf = Waveform::render(&s, &RenderConfig::default_source());
/// let mut eye = EyeDiagram::new(rate.bit_period(), 96, 48, 0.5);
/// eye.add_waveform(&wf);
/// let m = eye_metrics(&eye).expect("crossings were accumulated");
/// assert!(m.width > rate.bit_period() * 0.8); // clean signal: open eye
/// ```
pub fn eye_metrics(eye: &EyeDiagram) -> Option<EyeMetrics> {
    let pp = eye.crossing_peak_to_peak()?;
    let mean = eye.crossing_mean()?;
    let width = (eye.ui() - pp).max(Time::ZERO);
    let height = eye.opening_at(0.25).max(eye.opening_at(0.75));
    Some(EyeMetrics {
        width,
        height,
        crossing_peak_to_peak: pp,
        crossing_mean: mean,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vardelay_siggen::{BitPattern, EdgeStream, GaussianRj, JitterModel};
    use vardelay_units::BitRate;
    use vardelay_waveform::{RenderConfig, Waveform};

    fn eye_for(rate_gbps: f64, sigma_ps: f64, bits: usize) -> EyeDiagram {
        let rate = BitRate::from_gbps(rate_gbps);
        let clean = EdgeStream::nrz(&BitPattern::prbs7(1, bits), rate);
        let stream = if sigma_ps > 0.0 {
            GaussianRj::new(Time::from_ps(sigma_ps), 21).apply(&clean)
        } else {
            clean
        };
        let wf = Waveform::render(&stream, &RenderConfig::default_source());
        let mut eye = EyeDiagram::new(rate.bit_period(), 96, 48, 0.5);
        eye.add_waveform(&wf);
        eye
    }

    #[test]
    fn jitter_narrows_the_eye() {
        let clean = eye_metrics(&eye_for(4.8, 0.0, 254)).unwrap();
        let dirty = eye_metrics(&eye_for(4.8, 4.0, 254)).unwrap();
        assert!(dirty.width < clean.width);
        assert!(dirty.crossing_peak_to_peak > clean.crossing_peak_to_peak);
    }

    #[test]
    fn clean_eye_is_nearly_full_ui() {
        let m = eye_metrics(&eye_for(2.0, 0.0, 127)).unwrap();
        let ui = BitRate::from_gbps(2.0).bit_period();
        assert!(m.width > ui * 0.95, "width {}", m.width);
        assert!(m.height > 0.5, "height {}", m.height);
    }

    #[test]
    fn empty_eye_gives_none() {
        let eye = EyeDiagram::new(Time::from_ps(100.0), 8, 8, 0.5);
        assert!(eye_metrics(&eye).is_none());
    }
}
