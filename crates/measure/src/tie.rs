//! Time-interval-error extraction.

use vardelay_siggen::EdgeStream;
use vardelay_units::Time;

/// Extracts the TIE sequence of a stream against an ideal clock at the
/// stream's nominal unit interval.
///
/// Each edge is compared to its nearest ideal bit boundary; the common
/// phase (mean offset) is removed, so a perfectly delayed clean signal has
/// an all-zero TIE. Folding assumes jitter stays well below UI/2; larger
/// excursions wrap, exactly as they alias on a folded scope display.
///
/// # Examples
///
/// ```
/// use vardelay_measure::tie_sequence;
/// use vardelay_siggen::{BitPattern, EdgeStream};
/// use vardelay_units::{BitRate, Time};
///
/// let s = EdgeStream::nrz(&BitPattern::clock(50), BitRate::from_gbps(1.0));
/// let tie = tie_sequence(&s.delayed(Time::from_ps(37.0)));
/// assert!(tie.iter().all(|t| t.abs() < Time::from_fs(10.0)));
/// ```
pub fn tie_sequence(stream: &EdgeStream) -> Vec<Time> {
    tie_sequence_with_ui(stream, stream.ui())
}

/// Like [`tie_sequence`] but against an explicit ideal period — required
/// for signals whose edges are denser than the nominal unit interval, such
/// as a 50 %-duty RZ clock (edges every half period).
pub fn tie_sequence_with_ui(stream: &EdgeStream, ui: Time) -> Vec<Time> {
    let ui = ui.as_s();
    if ui <= 0.0 || stream.is_empty() {
        return Vec::new();
    }
    let folded: Vec<f64> = stream
        .times()
        .map(|t| {
            let x = t.as_s() / ui;
            (x - x.round()) * ui
        })
        .collect();
    // Remove the common phase. A plain mean is correct while the offsets
    // stay within ±UI/2 of a common value; for offsets straddling the fold
    // boundary, use a circular mean to find the phase first.
    let two_pi = core::f64::consts::TAU;
    let (sin_sum, cos_sum) = folded.iter().fold((0.0, 0.0), |(s, c), &x| {
        let ang = x / ui * two_pi;
        (s + ang.sin(), c + ang.cos())
    });
    let phase = sin_sum.atan2(cos_sum) / two_pi * ui;
    folded
        .iter()
        .map(|&x| {
            let mut d = x - phase;
            // Re-wrap into (-UI/2, UI/2].
            if d > ui / 2.0 {
                d -= ui;
            } else if d < -ui / 2.0 {
                d += ui;
            }
            Time::from_s(d)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vardelay_siggen::{BitPattern, GaussianRj, JitterModel};
    use vardelay_units::BitRate;

    #[test]
    fn clean_clock_has_zero_tie() {
        let s = EdgeStream::nrz(&BitPattern::clock(100), BitRate::from_gbps(2.0));
        for t in tie_sequence(&s) {
            assert!(t.abs() < Time::from_fs(10.0));
        }
    }

    #[test]
    fn static_delay_is_removed() {
        let s = EdgeStream::nrz(&BitPattern::prbs7(1, 127), BitRate::from_gbps(2.0));
        let delayed = s.delayed(Time::from_ps(141.0));
        for t in tie_sequence(&delayed) {
            assert!(t.abs() < Time::from_fs(10.0), "residual {t}");
        }
    }

    #[test]
    fn phase_near_fold_boundary_is_handled() {
        // Delay of UI/2 puts every fold right at the wrap point; the
        // circular mean must still recover a consistent phase.
        let ui = BitRate::from_gbps(2.0).bit_period();
        let s = EdgeStream::nrz(&BitPattern::clock(200), BitRate::from_gbps(2.0));
        let delayed = s.delayed(ui * 0.5);
        let tie = tie_sequence(&delayed);
        let spread = {
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for t in &tie {
                lo = lo.min(t.as_ps());
                hi = hi.max(t.as_ps());
            }
            hi - lo
        };
        assert!(spread < 0.01, "spread {spread} ps");
    }

    #[test]
    fn gaussian_jitter_rms_is_recovered() {
        let s = EdgeStream::nrz(&BitPattern::clock(20_000), BitRate::from_gbps(2.0));
        let sigma = Time::from_ps(2.0);
        let j = GaussianRj::new(sigma, 5).apply(&s);
        let tie = tie_sequence(&j);
        let stats = crate::jitter::JitterStats::from_times(&tie).unwrap();
        assert!((stats.rms.as_ps() - 2.0).abs() < 0.1, "rms {}", stats.rms);
    }

    #[test]
    fn rz_clock_needs_half_period_reference() {
        use vardelay_units::Frequency;
        let s = EdgeStream::rz_clock(Frequency::from_ghz(6.4), 500);
        // Against the full period the falling edges wrap catastrophically…
        let wrong = tie_sequence(&s);
        let wrong_pp = crate::jitter::JitterStats::from_times(&wrong)
            .unwrap()
            .peak_to_peak;
        assert!(
            wrong_pp > Time::from_ps(50.0),
            "unexpectedly clean: {wrong_pp}"
        );
        // …while the half-period reference sees a clean clock.
        let right = tie_sequence_with_ui(&s, s.ui() * 0.5);
        let right_pp = crate::jitter::JitterStats::from_times(&right)
            .unwrap()
            .peak_to_peak;
        assert!(right_pp < Time::from_ps(0.1), "pp {right_pp}");
    }

    #[test]
    fn empty_stream_gives_empty_tie() {
        let s = EdgeStream::nrz(
            &BitPattern::from_str("0000").unwrap(),
            BitRate::from_gbps(1.0),
        );
        assert!(tie_sequence(&s).is_empty());
    }
}
