//! Data-dependent jitter decomposition.
//!
//! The circuit's envelope-settling mechanism (and any band-limited
//! channel) delays an edge differently depending on how long the line
//! rested before it — the *preceding run length*. Conditioning the TIE on
//! that context separates bounded, repeatable DDJ from random jitter:
//! DDJ is the spread of the per-context means; the residual about each
//! context mean is RJ (plus unconditioned DJ).

use crate::tie::tie_sequence_with_ui;
use vardelay_siggen::EdgeStream;
use vardelay_units::Time;

/// The per-context decomposition of a stream's TIE.
#[derive(Debug, Clone, PartialEq)]
pub struct DdjDecomposition {
    /// Mean TIE per preceding-run-length context (index 0 = run of 1 UI).
    /// Contexts beyond `max_context` are folded into the last bin.
    pub context_means: Vec<Time>,
    /// Edges observed per context.
    pub context_counts: Vec<usize>,
    /// Peak-to-peak spread of the context means — the DDJ figure.
    pub ddj_peak_to_peak: Time,
    /// RMS of the residual after removing each edge's context mean — the
    /// random (plus uncorrelated deterministic) part.
    pub residual_rms: Time,
}

/// Decomposes a stream's jitter by preceding-run-length context.
///
/// `max_context` bounds the context table (typical: 7, the PRBS7 longest
/// run). Returns `None` for streams with fewer than two edges.
///
/// # Panics
///
/// Panics if `max_context == 0`.
pub fn ddj_by_run_length(stream: &EdgeStream, max_context: usize) -> Option<DdjDecomposition> {
    assert!(max_context > 0, "at least one context bin required");
    let tie = tie_sequence_with_ui(stream, stream.ui());
    if tie.len() < 2 {
        return None;
    }
    let ui = stream.ui().as_s();
    let times: Vec<f64> = stream.times().map(|t| t.as_s()).collect();

    // Context of edge i: preceding run length in UI (from the gap to the
    // previous edge). Edge 0 has no context; skip it.
    let mut sums = vec![0.0f64; max_context];
    let mut counts = vec![0usize; max_context];
    let mut contexts = Vec::with_capacity(tie.len());
    contexts.push(None);
    for i in 1..times.len() {
        let run = (((times[i] - times[i - 1]) / ui).round() as usize).max(1);
        let bin = (run - 1).min(max_context - 1);
        sums[bin] += tie[i].as_ps();
        counts[bin] += 1;
        contexts.push(Some(bin));
    }

    let means: Vec<f64> = sums
        .iter()
        .zip(&counts)
        .map(|(s, &c)| if c == 0 { 0.0 } else { s / c as f64 })
        .collect();

    // DDJ: spread of populated context means.
    let populated: Vec<f64> = means
        .iter()
        .zip(&counts)
        .filter(|&(_, &c)| c > 0)
        .map(|(&m, _)| m)
        .collect();
    let ddj = if populated.len() < 2 {
        0.0
    } else {
        populated.iter().cloned().fold(f64::MIN, f64::max)
            - populated.iter().cloned().fold(f64::MAX, f64::min)
    };

    // Residual about the context means.
    let mut sq = 0.0f64;
    let mut n = 0usize;
    for (t, ctx) in tie.iter().zip(&contexts) {
        if let Some(bin) = ctx {
            let r = t.as_ps() - means[*bin];
            sq += r * r;
            n += 1;
        }
    }
    let residual_rms = if n == 0 { 0.0 } else { (sq / n as f64).sqrt() };

    Some(DdjDecomposition {
        context_means: means.into_iter().map(Time::from_ps).collect(),
        context_counts: counts,
        ddj_peak_to_peak: Time::from_ps(ddj),
        residual_rms: Time::from_ps(residual_rms),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vardelay_siggen::{BitPattern, GaussianRj, JitterModel};
    use vardelay_units::BitRate;

    #[test]
    fn clean_stream_has_no_ddj() {
        let s = EdgeStream::nrz(&BitPattern::prbs7(1, 2540), BitRate::from_gbps(6.4));
        let d = ddj_by_run_length(&s, 7).expect("long capture");
        assert!(
            d.ddj_peak_to_peak < Time::from_fs(100.0),
            "{:?}",
            d.ddj_peak_to_peak
        );
        assert!(d.residual_rms < Time::from_fs(100.0));
    }

    #[test]
    fn synthetic_run_length_dependence_is_recovered() {
        // Displace each edge by 1 ps per UI of preceding run: a pure DDJ
        // mechanism.
        let s = EdgeStream::nrz(&BitPattern::prbs7(1, 2540), BitRate::from_gbps(6.4));
        let ui = s.ui().as_s();
        let times: Vec<Time> = {
            let raw: Vec<f64> = s.times().map(|t| t.as_s()).collect();
            raw.iter()
                .enumerate()
                .map(|(i, &t)| {
                    let run = if i == 0 {
                        1.0
                    } else {
                        ((t - raw[i - 1]) / ui).round()
                    };
                    Time::from_s(t) + Time::from_ps(run)
                })
                .collect()
        };
        let displaced = s.with_times(&times);
        let d = ddj_by_run_length(&displaced, 7).expect("long capture");
        // PRBS7 runs span 1..7 UI → context means span ~6 ps.
        assert!(
            (d.ddj_peak_to_peak.as_ps() - 6.0).abs() < 0.5,
            "ddj {}",
            d.ddj_peak_to_peak
        );
        // Context means are monotone in run length where populated.
        let populated: Vec<f64> = d
            .context_means
            .iter()
            .zip(&d.context_counts)
            .filter(|&(_, &c)| c > 0)
            .map(|(m, _)| m.as_ps())
            .collect();
        for w in populated.windows(2) {
            assert!(w[1] > w[0] - 0.2, "{populated:?}");
        }
        // Nearly no residual: the mechanism was purely deterministic.
        assert!(d.residual_rms < Time::from_ps(0.3), "{}", d.residual_rms);
    }

    #[test]
    fn rj_lands_in_the_residual_not_in_ddj() {
        let clean = EdgeStream::nrz(&BitPattern::prbs7(1, 20_000), BitRate::from_gbps(6.4));
        let s = GaussianRj::new(Time::from_ps(1.5), 4).apply(&clean);
        let d = ddj_by_run_length(&s, 7).expect("long capture");
        assert!(
            (d.residual_rms.as_ps() - 1.5).abs() < 0.15,
            "residual {}",
            d.residual_rms
        );
        // Context means agree within statistical noise → small DDJ figure.
        assert!(
            d.ddj_peak_to_peak < Time::from_ps(0.5),
            "{}",
            d.ddj_peak_to_peak
        );
    }

    #[test]
    fn tiny_streams_are_none() {
        let s = EdgeStream::nrz(&BitPattern::ones(4), BitRate::from_gbps(1.0));
        assert!(ddj_by_run_length(&s, 7).is_none());
    }
}
