//! Jitter spectrum analysis: TIE spectra, periodic-jitter tone detection
//! and RJ/PJ decomposition.
//!
//! A jitter-injection tester (paper §5) needs to verify not just *how
//! much* jitter it injected but *what kind*. These helpers treat the TIE
//! sequence as a uniformly sampled signal at the mean edge spacing (exact
//! for clock patterns, a standard approximation for data) and extract its
//! spectral content with per-bin Goertzel DFTs.

use crate::sweep::Series;
use vardelay_units::{Frequency, Time};

/// One detected periodic-jitter tone.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpectralLine {
    /// Tone frequency.
    pub frequency: Frequency,
    /// Tone amplitude (peak displacement, i.e. half its pk-pk
    /// contribution).
    pub amplitude: Time,
}

/// The RJ/PJ decomposition of a TIE sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct RjPjSplit {
    /// Detected periodic tones, strongest first.
    pub tones: Vec<SpectralLine>,
    /// RMS of the residual after removing the tones — the random jitter.
    pub rj_rms: Time,
    /// Sum of the tones' pk-pk contributions (upper bound on PJ pk-pk).
    pub pj_peak_to_peak: Time,
}

/// Computes a single-bin DFT (Goertzel) at normalized frequency
/// `k/n` cycles per sample; returns the amplitude of a sinusoid that
/// would produce this bin's magnitude.
fn goertzel_amplitude(samples: &[f64], k_over_n: f64) -> f64 {
    let n = samples.len();
    if n == 0 {
        return 0.0;
    }
    let w = 2.0 * core::f64::consts::PI * k_over_n;
    let coeff = 2.0 * w.cos();
    let (mut s_prev, mut s_prev2) = (0.0f64, 0.0f64);
    for &x in samples {
        let s = x + coeff * s_prev - s_prev2;
        s_prev2 = s_prev;
        s_prev = s;
    }
    let real = s_prev - s_prev2 * w.cos();
    let imag = s_prev2 * w.sin();
    2.0 * (real * real + imag * imag).sqrt() / n as f64
}

/// Computes the amplitude spectrum of a TIE sequence sampled at
/// `sample_interval`, over `bins` frequencies up to Nyquist.
///
/// Returns an empty series for fewer than four samples or a non-positive
/// interval.
pub fn tie_spectrum(tie: &[Time], sample_interval: Time, bins: usize) -> Series {
    let mut series = Series::new("TIE spectrum", "freq_hz", "amplitude_ps");
    if tie.len() < 4 || sample_interval <= Time::ZERO || bins == 0 {
        return series;
    }
    let mean = tie.iter().map(|t| t.as_ps()).sum::<f64>() / tie.len() as f64;
    let samples: Vec<f64> = tie.iter().map(|t| t.as_ps() - mean).collect();
    let fs = 1.0 / sample_interval.as_s();
    for b in 1..=bins {
        let k_over_n = 0.5 * b as f64 / bins as f64; // up to Nyquist
        let amp = goertzel_amplitude(&samples, k_over_n);
        series.push(k_over_n * fs, amp);
    }
    series
}

/// Least-squares fits and subtracts a sinusoid at `k_over_n` cycles per
/// sample; returns its amplitude.
fn remove_tone(samples: &mut [f64], k_over_n: f64) -> f64 {
    let n = samples.len() as f64;
    let w = 2.0 * core::f64::consts::PI * k_over_n;
    let (mut ss, mut sc) = (0.0f64, 0.0f64);
    for (i, &x) in samples.iter().enumerate() {
        let arg = w * i as f64;
        ss += x * arg.sin();
        sc += x * arg.cos();
    }
    let a = 2.0 * ss / n;
    let b = 2.0 * sc / n;
    for (i, x) in samples.iter_mut().enumerate() {
        let arg = w * i as f64;
        *x -= a * arg.sin() + b * arg.cos();
    }
    (a * a + b * b).sqrt()
}

/// Decomposes a TIE sequence into periodic tones and a random residual.
///
/// Up to `max_tones` spectral peaks at least three times the median bin
/// amplitude are fitted and removed; whatever remains is reported as RJ.
///
/// Returns `None` for sequences shorter than 16 samples.
pub fn separate_rj_pj(tie: &[Time], sample_interval: Time, max_tones: usize) -> Option<RjPjSplit> {
    if tie.len() < 16 || sample_interval <= Time::ZERO {
        return None;
    }
    let mean = tie.iter().map(|t| t.as_ps()).sum::<f64>() / tie.len() as f64;
    let mut samples: Vec<f64> = tie.iter().map(|t| t.as_ps() - mean).collect();
    let fs = 1.0 / sample_interval.as_s();
    let bins = (tie.len() / 2).clamp(8, 512);

    let mut tones = Vec::new();
    for _ in 0..max_tones {
        // Scan the spectrum of the current residual.
        let mut amplitudes: Vec<(f64, f64)> = (1..=bins)
            .map(|b| {
                let k_over_n = 0.5 * b as f64 / bins as f64;
                (k_over_n, goertzel_amplitude(&samples, k_over_n))
            })
            .collect();
        let mut sorted: Vec<f64> = amplitudes.iter().map(|&(_, a)| a).collect();
        sorted.sort_by(f64::total_cmp);
        let median = sorted[sorted.len() / 2];
        amplitudes.sort_by(|a, b| b.1.total_cmp(&a.1));
        let (coarse_k, peak) = amplitudes[0];
        if peak < 3.0 * median || peak <= 0.0 {
            break; // nothing tone-like left
        }
        // Refine the tone frequency within ±1 bin: a least-squares fit at
        // an off-grid frequency decoheres over long records (spectral
        // leakage), so scan a fine local grid for the true maximum.
        let spacing = 0.5 / bins as f64;
        let mut k_over_n = coarse_k;
        let mut best = peak;
        for step in -20i32..=20 {
            let k = coarse_k + spacing * step as f64 / 20.0;
            if k <= 0.0 || k >= 0.5 {
                continue;
            }
            let a = goertzel_amplitude(&samples, k);
            if a > best {
                best = a;
                k_over_n = k;
            }
        }
        let fitted = remove_tone(&mut samples, k_over_n);
        tones.push(SpectralLine {
            frequency: Frequency::from_hz(k_over_n * fs),
            amplitude: Time::from_ps(fitted),
        });
    }

    let rj_var = samples.iter().map(|x| x * x).sum::<f64>() / samples.len() as f64;
    let pj_pp: Time = tones.iter().map(|t| t.amplitude * 2.0).sum();
    Some(RjPjSplit {
        tones,
        rj_rms: Time::from_ps(rj_var.sqrt()),
        pj_peak_to_peak: pj_pp,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vardelay_siggen::SplitMix64;

    fn synth(
        n: usize,
        dt_ps: f64,
        rj_ps: f64,
        tones: &[(f64, f64)], // (freq Hz, amplitude ps)
        seed: u64,
    ) -> (Vec<Time>, Time) {
        let mut rng = SplitMix64::new(seed);
        let dt = Time::from_ps(dt_ps);
        let tie = (0..n)
            .map(|i| {
                let t = dt_ps * 1e-12 * i as f64;
                let mut v = rng.gaussian() * rj_ps;
                for &(f, a) in tones {
                    v += a * (2.0 * core::f64::consts::PI * f * t).sin();
                }
                Time::from_ps(v)
            })
            .collect();
        (tie, dt)
    }

    #[test]
    fn pure_tone_is_found_at_the_right_frequency() {
        // 20 MHz tone sampled at 312.5 ps (3.2 GS/s).
        let (tie, dt) = synth(4096, 312.5, 0.0, &[(20e6, 5.0)], 1);
        let split = separate_rj_pj(&tie, dt, 3).unwrap();
        assert!(!split.tones.is_empty());
        let tone = split.tones[0];
        assert!(
            (tone.frequency.as_mhz() - 20.0).abs() < 2.0,
            "found {} instead",
            tone.frequency
        );
        assert!(
            (tone.amplitude.as_ps() - 5.0).abs() < 0.8,
            "amplitude {}",
            tone.amplitude
        );
        assert!(split.rj_rms < Time::from_ps(1.2), "rj {}", split.rj_rms);
    }

    #[test]
    fn rj_survives_tone_removal() {
        let (tie, dt) = synth(4096, 312.5, 2.0, &[(31e6, 6.0)], 7);
        let split = separate_rj_pj(&tie, dt, 3).unwrap();
        assert!(
            (split.rj_rms.as_ps() - 2.0).abs() < 0.4,
            "rj {}",
            split.rj_rms
        );
        assert!(split.pj_peak_to_peak > Time::from_ps(8.0));
    }

    #[test]
    fn pure_noise_yields_no_tones() {
        let (tie, dt) = synth(4096, 312.5, 1.5, &[], 3);
        let split = separate_rj_pj(&tie, dt, 3).unwrap();
        // Noise peaks hover around the median; the 3x threshold should
        // keep spurious tone counts near zero (allow one false positive).
        assert!(split.tones.len() <= 1, "found {:?}", split.tones);
        assert!((split.rj_rms.as_ps() - 1.5).abs() < 0.3);
    }

    #[test]
    fn two_tones_are_separated() {
        let (tie, dt) = synth(8192, 312.5, 0.5, &[(12e6, 4.0), (45e6, 3.0)], 11);
        let split = separate_rj_pj(&tie, dt, 4).unwrap();
        assert!(split.tones.len() >= 2, "{:?}", split.tones);
        let freqs: Vec<f64> = split.tones.iter().map(|t| t.frequency.as_mhz()).collect();
        assert!(freqs.iter().any(|f| (f - 12.0).abs() < 2.0), "{freqs:?}");
        assert!(freqs.iter().any(|f| (f - 45.0).abs() < 3.0), "{freqs:?}");
    }

    #[test]
    fn spectrum_series_shape() {
        let (tie, dt) = synth(1024, 312.5, 0.1, &[(50e6, 3.0)], 5);
        let spec = tie_spectrum(&tie, dt, 128);
        assert_eq!(spec.len(), 128);
        // The peak bin sits near 50 MHz.
        let (peak_f, _) = spec
            .points()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("non-empty");
        assert!((peak_f / 1e6 - 50.0).abs() < 8.0, "peak at {peak_f} Hz");
    }

    #[test]
    fn degenerate_inputs() {
        assert!(tie_spectrum(&[], Time::from_ps(1.0), 8).is_empty());
        assert!(separate_rj_pj(&[Time::ZERO; 4], Time::from_ps(1.0), 2).is_none());
        assert!(separate_rj_pj(&[Time::ZERO; 100], Time::ZERO, 2).is_none());
    }
}
