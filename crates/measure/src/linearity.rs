//! Least-squares fits and linearity figures for transfer curves.
//!
//! The paper's Fig. 7 claims the delay-vs-Vctrl curve is "approximately
//! linear throughout much of the mid-range, with changes in slope near the
//! extremes" — these helpers quantify exactly that.

/// An ordinary least-squares straight-line fit `y ≈ slope·x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination in `[0, 1]`.
    pub r_squared: f64,
}

impl LinearFit {
    /// Evaluates the fitted line at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

/// Fits a straight line to `(xs, ys)` by least squares.
///
/// Returns `None` for fewer than two points or degenerate (constant-x)
/// data.
///
/// # Panics
///
/// Panics if `xs` and `ys` have different lengths.
///
/// # Examples
///
/// ```
/// use vardelay_measure::linear_fit;
///
/// let fit = linear_fit(&[0.0, 1.0, 2.0], &[1.0, 3.0, 5.0]).expect("well-posed");
/// assert!((fit.slope - 2.0).abs() < 1e-12);
/// assert!((fit.r_squared - 1.0).abs() < 1e-12);
/// ```
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> Option<LinearFit> {
    assert_eq!(xs.len(), ys.len(), "x and y must be the same length");
    let n = xs.len();
    if n < 2 {
        return None;
    }
    let nf = n as f64;
    let sx: f64 = xs.iter().sum();
    let sy: f64 = ys.iter().sum();
    let sxx: f64 = xs.iter().map(|x| x * x).sum();
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| x * y).sum();
    let denom = nf * sxx - sx * sx;
    if denom.abs() < 1e-300 {
        return None;
    }
    let slope = (nf * sxy - sx * sy) / denom;
    let intercept = (sy - slope * sx) / nf;

    let mean_y = sy / nf;
    let ss_tot: f64 = ys.iter().map(|y| (y - mean_y).powi(2)).sum();
    let ss_res: f64 = xs
        .iter()
        .zip(ys)
        .map(|(x, y)| (y - (slope * x + intercept)).powi(2))
        .sum();
    let r_squared = if ss_tot <= 0.0 {
        1.0
    } else {
        (1.0 - ss_res / ss_tot).clamp(0.0, 1.0)
    };
    Some(LinearFit {
        slope,
        intercept,
        r_squared,
    })
}

/// Integral nonlinearity: the maximum |deviation| of the curve from the
/// straight line through its endpoints, in the y unit.
///
/// Returns `None` for fewer than two points.
///
/// # Panics
///
/// Panics if `xs` and `ys` have different lengths.
pub fn integral_nonlinearity(xs: &[f64], ys: &[f64]) -> Option<f64> {
    assert_eq!(xs.len(), ys.len(), "x and y must be the same length");
    let n = xs.len();
    if n < 2 {
        return None;
    }
    let (x0, y0) = (xs[0], ys[0]);
    let (x1, y1) = (xs[n - 1], ys[n - 1]);
    let dx = x1 - x0;
    if dx.abs() < 1e-300 {
        return None;
    }
    let slope = (y1 - y0) / dx;
    Some(
        xs.iter()
            .zip(ys)
            .map(|(x, y)| (y - (y0 + slope * (x - x0))).abs())
            .fold(0.0, f64::max),
    )
}

/// Differential nonlinearity of a stepped curve: the maximum |deviation| of
/// each step height from the mean step height, in the y unit.
///
/// Returns `None` for fewer than two points.
///
/// # Panics
///
/// Panics if `xs` and `ys` have different lengths.
pub fn differential_nonlinearity(xs: &[f64], ys: &[f64]) -> Option<f64> {
    assert_eq!(xs.len(), ys.len(), "x and y must be the same length");
    if xs.len() < 2 {
        return None;
    }
    let steps: Vec<f64> = ys.windows(2).map(|w| w[1] - w[0]).collect();
    let mean = steps.iter().sum::<f64>() / steps.len() as f64;
    Some(steps.iter().map(|s| (s - mean).abs()).fold(0.0, f64::max))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_line() {
        let xs = [0.0, 0.5, 1.0, 1.5];
        let ys: Vec<f64> = xs.iter().map(|x| 37.0 * x + 2.0).collect();
        let f = linear_fit(&xs, &ys).unwrap();
        assert!((f.slope - 37.0).abs() < 1e-9);
        assert!((f.intercept - 2.0).abs() < 1e-9);
        assert!((f.r_squared - 1.0).abs() < 1e-12);
        assert!((f.predict(2.0) - 76.0).abs() < 1e-9);
    }

    #[test]
    fn noisy_line_has_r2_below_one() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| 2.0 * x + if (*x as u64) % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let f = linear_fit(&xs, &ys).unwrap();
        assert!((f.slope - 2.0).abs() < 0.01);
        assert!(f.r_squared > 0.99 && f.r_squared < 1.0);
    }

    #[test]
    fn degenerate_fits_are_none() {
        assert!(linear_fit(&[1.0], &[1.0]).is_none());
        assert!(linear_fit(&[2.0, 2.0], &[0.0, 1.0]).is_none());
    }

    #[test]
    fn inl_of_s_curve() {
        // tanh-like curve: endpoints straight line, bulge in the middle.
        let xs: Vec<f64> = (0..=10).map(|i| i as f64 / 10.0).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (2.0 * (x - 0.5)).tanh()).collect();
        let inl = integral_nonlinearity(&xs, &ys).unwrap();
        assert!(inl > 0.05 && inl < 0.5, "inl {inl}");
    }

    #[test]
    fn inl_of_line_is_zero() {
        let xs = [0.0, 1.0, 2.0];
        let ys = [5.0, 7.0, 9.0];
        assert!(integral_nonlinearity(&xs, &ys).unwrap() < 1e-12);
    }

    #[test]
    fn dnl_flags_uneven_steps() {
        // Coarse taps measured by the paper: 0, 33, 70, 95 (ideal step 33).
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys = [0.0, 33.0, 70.0, 95.0];
        let dnl = differential_nonlinearity(&xs, &ys).unwrap();
        // Steps are 33, 37, 25; mean 31.67 → max deviation 6.67.
        assert!((dnl - 6.666_666).abs() < 1e-3, "dnl {dnl}");
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn mismatched_lengths_panic() {
        let _ = linear_fit(&[1.0], &[]);
    }
}
