//! Plain-text result tables for the experiment harness.

use std::fmt;

/// A simple aligned text table with a title, headers and string rows —
/// the output format of the `repro` binary and of EXPERIMENTS.md entries.
///
/// # Examples
///
/// ```
/// use vardelay_measure::Table;
///
/// let mut t = Table::new("Coarse taps", &["tap", "designed_ps", "measured_ps"]);
/// t.push_row(&["0", "0", "0.0"]);
/// t.push_row(&["1", "33", "33.2"]);
/// let text = t.to_string();
/// assert!(text.contains("Coarse taps"));
/// assert!(text.lines().count() >= 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        assert!(!headers.is_empty(), "a table needs at least one column");
        Table {
            title: title.to_owned(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_row(&mut self, cells: &[&str]) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows
            .push(cells.iter().map(|s| (*s).to_owned()).collect());
    }

    /// Appends a row of already-owned cells.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_owned_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(cells);
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Renders as CSV (headers + rows, no title).
    pub fn to_csv(&self) -> String {
        let mut out = self.headers.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut line = String::new();
            for (w, cell) in widths.iter().zip(cells) {
                line.push_str(&format!("{cell:>w$}  ", w = w));
            }
            writeln!(f, "{}", line.trim_end())
        };
        write_row(f, &self.headers)?;
        let rule: usize = widths.iter().map(|w| w + 2).sum::<usize>() - 2;
        writeln!(f, "{}", "-".repeat(rule))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a picosecond value with two decimals, the convention used in
/// every experiment table.
pub fn fmt_ps(t: vardelay_units::Time) -> String {
    format!("{:.2}", t.as_ps())
}

#[cfg(test)]
mod tests {
    use super::*;
    use vardelay_units::Time;

    #[test]
    fn render_aligned() {
        let mut t = Table::new("T", &["a", "long_header"]);
        t.push_row(&["1", "2"]);
        t.push_row(&["333", "4"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "== T ==");
        assert!(lines[1].contains("long_header"));
        assert_eq!(t.row_count(), 2);
    }

    #[test]
    fn csv_is_plain() {
        let mut t = Table::new("T", &["x", "y"]);
        t.push_row(&["1", "2"]);
        assert_eq!(t.to_csv(), "x,y\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_enforced() {
        let mut t = Table::new("T", &["a", "b"]);
        t.push_row(&["only one"]);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn headers_required() {
        let _ = Table::new("T", &[]);
    }

    #[test]
    fn fmt_ps_two_decimals() {
        assert_eq!(fmt_ps(Time::from_ps(33.333)), "33.33");
    }
}
