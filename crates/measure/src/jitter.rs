//! Jitter statistics: peak-to-peak / RMS total jitter and the dual-Dirac
//! TJ@BER estimate.

use vardelay_units::Time;

/// Summary jitter statistics of a crossing/TIE population.
///
/// `peak_to_peak` is what the paper reports as "TJ" — the full spread of
/// the crossing histogram on the scope over the capture.
///
/// # Examples
///
/// ```
/// use vardelay_measure::JitterStats;
/// use vardelay_units::Time;
///
/// let tie = [Time::from_ps(-1.0), Time::from_ps(0.0), Time::from_ps(2.0)];
/// let s = JitterStats::from_times(&tie).unwrap();
/// assert!((s.peak_to_peak.as_ps() - 3.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JitterStats {
    /// Full spread (max − min).
    pub peak_to_peak: Time,
    /// RMS deviation about the mean.
    pub rms: Time,
    /// Mean displacement.
    pub mean: Time,
    /// Number of samples in the population.
    pub count: usize,
}

impl JitterStats {
    /// Computes statistics over a displacement population, or `None` if it
    /// is empty.
    pub fn from_times(times: &[Time]) -> Option<Self> {
        if times.is_empty() {
            return None;
        }
        let n = times.len() as f64;
        let mean_s = times.iter().map(|t| t.as_s()).sum::<f64>() / n;
        let var = times
            .iter()
            .map(|t| (t.as_s() - mean_s).powi(2))
            .sum::<f64>()
            / n;
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for t in times {
            lo = lo.min(t.as_s());
            hi = hi.max(t.as_s());
        }
        Some(JitterStats {
            peak_to_peak: Time::from_s(hi - lo),
            rms: Time::from_s(var.sqrt()),
            mean: Time::from_s(mean_s),
            count: times.len(),
        })
    }
}

impl core::fmt::Display for JitterStats {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "TJpp={} RMS={} mean={} (n={})",
            self.peak_to_peak, self.rms, self.mean, self.count
        )
    }
}

/// Inverse of the standard normal CDF (Acklam's rational approximation,
/// relative error < 1.15e-9 over the open unit interval).
///
/// # Panics
///
/// Panics unless `0 < p < 1`.
pub fn inv_norm_cdf(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "probability must be in (0, 1)");
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -inv_norm_cdf(1.0 - p)
    }
}

/// Dual-Dirac total jitter at a target bit-error ratio.
///
/// The population is modelled as two Dirac components (bounded DJ)
/// convolved with Gaussian RJ. Tails are fit by quantile regression:
/// `TJ(BER) = DJδδ + Q(BER)·(σ_left + σ_right)` with
/// `Q(BER) = 2·Φ⁻¹(1−BER)` split across both tails.
///
/// Returns `None` for populations smaller than 100 samples (tail fits are
/// meaningless below that).
///
/// # Panics
///
/// Panics unless `0 < ber < 0.5`.
pub fn dual_dirac_tj(times: &[Time], ber: f64) -> Option<Time> {
    assert!(ber > 0.0 && ber < 0.5, "BER must be in (0, 0.5)");
    if times.len() < 100 {
        return None;
    }
    let mut xs: Vec<f64> = times.iter().map(|t| t.as_s()).collect();
    xs.sort_by(f64::total_cmp);
    let n = xs.len();

    // Quantile regression over each tail: x(p) ≈ mu + sigma * z(p).
    let tail_fit = |lo_q: f64, hi_q: f64| -> (f64, f64) {
        let i0 = ((lo_q * n as f64) as usize).min(n - 2);
        let i1 = ((hi_q * n as f64) as usize).clamp(i0 + 1, n - 1);
        let mut sum_z = 0.0;
        let mut sum_x = 0.0;
        let mut sum_zz = 0.0;
        let mut sum_zx = 0.0;
        let m = (i1 - i0 + 1) as f64;
        #[allow(clippy::needless_range_loop)] // index feeds both p and xs
        for i in i0..=i1 {
            let p = (i as f64 + 0.5) / n as f64;
            let z = inv_norm_cdf(p);
            sum_z += z;
            sum_x += xs[i];
            sum_zz += z * z;
            sum_zx += z * xs[i];
        }
        let denom = m * sum_zz - sum_z * sum_z;
        if denom.abs() < 1e-300 {
            return (0.0, xs[i0]);
        }
        let sigma = (m * sum_zx - sum_z * sum_x) / denom;
        let mu = (sum_x - sigma * sum_z) / m;
        (sigma.max(0.0), mu)
    };

    let (sigma_l, mu_l) = tail_fit(0.005, 0.10);
    let (sigma_r, mu_r) = tail_fit(0.90, 0.995);
    let q = -inv_norm_cdf(ber); // one-sided tail quantile
    let dj = (mu_r - mu_l).max(0.0);
    Some(Time::from_s(dj + q * (sigma_l + sigma_r)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vardelay_siggen::SplitMix64;

    #[test]
    fn stats_basic() {
        let tie: Vec<Time> = [-2.0, 0.0, 2.0].iter().map(|&p| Time::from_ps(p)).collect();
        let s = JitterStats::from_times(&tie).unwrap();
        assert!((s.peak_to_peak.as_ps() - 4.0).abs() < 1e-9);
        assert!(s.mean.abs() < Time::from_fs(1.0));
        assert!((s.rms.as_ps() - (8.0f64 / 3.0).sqrt()).abs() < 1e-9);
        assert_eq!(s.count, 3);
    }

    #[test]
    fn stats_empty() {
        assert!(JitterStats::from_times(&[]).is_none());
    }

    #[test]
    fn inv_norm_cdf_known_values() {
        assert!(inv_norm_cdf(0.5).abs() < 1e-9);
        assert!((inv_norm_cdf(0.8413447460685429) - 1.0).abs() < 1e-6);
        assert!((inv_norm_cdf(1e-12) + 7.034).abs() < 0.01);
    }

    #[test]
    fn dual_dirac_pure_gaussian() {
        // Pure RJ: DJ ≈ 0, TJ(1e-12) ≈ 2 * 7.034 * sigma.
        let mut rng = SplitMix64::new(4);
        let sigma_ps = 1.0;
        let pop: Vec<Time> = (0..100_000)
            .map(|_| Time::from_ps(rng.gaussian() * sigma_ps))
            .collect();
        let tj = dual_dirac_tj(&pop, 1e-12).unwrap().as_ps();
        let expect = 2.0 * 7.034 * sigma_ps;
        assert!((tj - expect).abs() / expect < 0.12, "tj {tj} vs {expect}");
    }

    #[test]
    fn dual_dirac_separates_dj() {
        // Two Diracs at ±5 ps plus sigma = 0.5 ps RJ.
        let mut rng = SplitMix64::new(9);
        let pop: Vec<Time> = (0..100_000)
            .map(|i| {
                let dj = if i % 2 == 0 { -5.0 } else { 5.0 };
                Time::from_ps(dj + rng.gaussian() * 0.5)
            })
            .collect();
        let tj = dual_dirac_tj(&pop, 1e-12).unwrap().as_ps();
        let expect = 10.0 + 2.0 * 7.034 * 0.5;
        assert!((tj - expect).abs() / expect < 0.12, "tj {tj} vs {expect}");
    }

    #[test]
    fn dual_dirac_needs_samples() {
        let pop: Vec<Time> = (0..50).map(|i| Time::from_ps(i as f64)).collect();
        assert!(dual_dirac_tj(&pop, 1e-12).is_none());
    }

    #[test]
    #[should_panic(expected = "BER")]
    fn dual_dirac_validates_ber() {
        let pop = vec![Time::ZERO; 200];
        let _ = dual_dirac_tj(&pop, 0.7);
    }
}
