//! Calibration: inverting the measured delay-vs-`Vctrl` curve.
//!
//! "Given these measurements, we can determine an appropriate control
//! voltage for any desired delay within this ~56 ps range" (paper §2,
//! Fig. 7). A [`CalibrationTable`] holds the measured curve and performs
//! the inversion by monotone piecewise-linear interpolation.

use vardelay_units::{Time, Voltage};

/// Error returned when a target delay lies outside the calibrated curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationError {
    /// The requested delay.
    pub requested: Time,
    /// The smallest calibrated delay.
    pub min: Time,
    /// The largest calibrated delay.
    pub max: Time,
}

impl core::fmt::Display for CalibrationError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "delay {} is outside the calibrated span {}..{}",
            self.requested, self.min, self.max
        )
    }
}

impl std::error::Error for CalibrationError {}

/// A measured, monotonized delay-vs-`Vctrl` transfer curve.
///
/// # Examples
///
/// ```
/// use vardelay_core::CalibrationTable;
/// use vardelay_units::{Time, Voltage};
///
/// // A linear 30 ps/V toy curve measured at three points.
/// let table = CalibrationTable::from_measurement(
///     &[Voltage::ZERO, Voltage::from_v(0.75), Voltage::from_v(1.5)],
///     |v| Time::from_ps(100.0 + 30.0 * v.as_v()),
/// );
/// let v = table.vctrl_for_delay(Time::from_ps(115.0))?;
/// assert!((v.as_v() - 0.5).abs() < 1e-9);
/// # Ok::<(), vardelay_core::CalibrationError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationTable {
    vctrls: Vec<Voltage>,
    delays: Vec<Time>,
}

impl CalibrationTable {
    /// Builds a table by invoking `measure` at each grid point, then
    /// monotonizing the result (running maximum) so inversion is
    /// well-defined even with small measurement noise.
    ///
    /// # Panics
    ///
    /// Panics if `grid` has fewer than two points or is not strictly
    /// ascending.
    pub fn from_measurement(grid: &[Voltage], mut measure: impl FnMut(Voltage) -> Time) -> Self {
        assert!(grid.len() >= 2, "calibration needs at least two points");
        assert!(
            grid.windows(2).all(|w| w[0] < w[1]),
            "calibration grid must be strictly ascending"
        );
        let mut delays: Vec<Time> = grid.iter().map(|&v| measure(v)).collect();
        // Monotonize: the physical curve is non-decreasing; tiny dips are
        // measurement noise.
        for i in 1..delays.len() {
            delays[i] = delays[i].max(delays[i - 1]);
        }
        CalibrationTable {
            vctrls: grid.to_vec(),
            delays,
        }
    }

    /// The calibration grid.
    pub fn vctrls(&self) -> &[Voltage] {
        &self.vctrls
    }

    /// The measured (monotonized) delays.
    pub fn delays(&self) -> &[Time] {
        &self.delays
    }

    /// Smallest calibrated delay.
    pub fn min_delay(&self) -> Time {
        self.delays[0]
    }

    /// Largest calibrated delay.
    pub fn max_delay(&self) -> Time {
        *self.delays.last().expect("table is non-empty")
    }

    /// The usable fine adjustment range.
    pub fn range(&self) -> Time {
        self.max_delay() - self.min_delay()
    }

    /// Mean curve slope in seconds per volt, for DAC resolution estimates.
    pub fn mean_slope_s_per_v(&self) -> f64 {
        let dv = (*self.vctrls.last().expect("non-empty") - self.vctrls[0]).as_v();
        if dv == 0.0 {
            return 0.0;
        }
        self.range().as_s() / dv
    }

    /// Whether every delay strictly exceeds its predecessor — i.e. the
    /// monotonization never flattened a segment and the inversion is
    /// unambiguous everywhere. The solve cache refuses to serve tables
    /// that fail this check.
    pub fn is_strictly_increasing(&self) -> bool {
        self.delays.windows(2).all(|w| w[0] < w[1])
    }

    /// Interpolates the delay at an arbitrary control voltage (clamped to
    /// the calibrated span).
    pub fn delay_at(&self, vctrl: Voltage) -> Time {
        if vctrl <= self.vctrls[0] {
            return self.delays[0];
        }
        let last = self.vctrls.len() - 1;
        if vctrl >= self.vctrls[last] {
            return self.delays[last];
        }
        let i = self.vctrls.partition_point(|&v| v <= vctrl) - 1;
        let f = (vctrl - self.vctrls[i]) / (self.vctrls[i + 1] - self.vctrls[i]);
        self.delays[i] + (self.delays[i + 1] - self.delays[i]) * f
    }

    /// Inverts the curve: the control voltage that produces `target`.
    ///
    /// Flat curve segments (from monotonization) resolve to their left
    /// edge.
    ///
    /// # Errors
    ///
    /// Returns [`CalibrationError`] if `target` lies outside the
    /// calibrated delay span.
    pub fn vctrl_for_delay(&self, target: Time) -> Result<Voltage, CalibrationError> {
        if target < self.min_delay() || target > self.max_delay() {
            return Err(CalibrationError {
                requested: target,
                min: self.min_delay(),
                max: self.max_delay(),
            });
        }
        // First segment whose right endpoint reaches the target.
        let i = self
            .delays
            .partition_point(|&d| d < target)
            .min(self.delays.len() - 1);
        if i == 0 {
            return Ok(self.vctrls[0]);
        }
        let (d0, d1) = (self.delays[i - 1], self.delays[i]);
        let (v0, v1) = (self.vctrls[i - 1], self.vctrls[i]);
        if d1 <= d0 {
            return Ok(v0); // flat segment
        }
        let f = (target - d0) / (d1 - d0);
        Ok(v0.lerp(v1, f))
    }
}

/// Error returned by [`CalibrationTable::from_csv`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCalibrationError {
    /// 1-based line number of the offending row.
    pub line: usize,
    /// What was wrong with it.
    pub reason: String,
}

impl core::fmt::Display for ParseCalibrationError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "calibration CSV line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for ParseCalibrationError {}

impl CalibrationTable {
    /// Serializes the table as two-column CSV (`vctrl_v,delay_ps`) — the
    /// persistence format a test-cell host stores between lots.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "vctrl_v,delay_ps
",
        );
        for (v, d) in self.vctrls.iter().zip(&self.delays) {
            out.push_str(&format!(
                "{:.9},{:.6}
",
                v.as_v(),
                d.as_ps()
            ));
        }
        out
    }

    /// Parses a table previously written by [`CalibrationTable::to_csv`].
    ///
    /// The grid must be strictly ascending; delays are re-monotonized on
    /// load exactly as during measurement.
    ///
    /// # Errors
    ///
    /// Returns [`ParseCalibrationError`] for malformed rows, an unsorted
    /// grid, or fewer than two points.
    pub fn from_csv(text: &str) -> Result<Self, ParseCalibrationError> {
        let mut vctrls = Vec::new();
        let mut delays = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || (i == 0 && line.starts_with("vctrl")) {
                continue;
            }
            let mut parts = line.split(',');
            let parse = |field: Option<&str>, what: &str| -> Result<f64, ParseCalibrationError> {
                field
                    .ok_or_else(|| ParseCalibrationError {
                        line: i + 1,
                        reason: format!("missing {what}"),
                    })?
                    .trim()
                    .parse::<f64>()
                    .map_err(|e| ParseCalibrationError {
                        line: i + 1,
                        reason: format!("bad {what}: {e}"),
                    })
            };
            let v = parse(parts.next(), "vctrl")?;
            let d = parse(parts.next(), "delay")?;
            vctrls.push(Voltage::from_v(v));
            delays.push(Time::from_ps(d));
        }
        if vctrls.len() < 2 {
            return Err(ParseCalibrationError {
                line: 0,
                reason: "calibration needs at least two points".to_owned(),
            });
        }
        if !vctrls.windows(2).all(|w| w[0] < w[1]) {
            return Err(ParseCalibrationError {
                line: 0,
                reason: "vctrl grid must be strictly ascending".to_owned(),
            });
        }
        for i in 1..delays.len() {
            delays[i] = delays[i].max(delays[i - 1]);
        }
        Ok(CalibrationTable { vctrls, delays })
    }

    /// Serializes the table **bit-exactly** for the serve layer's
    /// calibration snapshots (DESIGN.md §16): a `vardelay-cal-v1`
    /// header, then one `"<vctrl_bits>,<delay_bits>"` row per point with
    /// each value's raw IEEE-754 bits in lowercase hex. Unlike
    /// [`CalibrationTable::to_csv`] (a human-readable export rounded to
    /// fixed decimals), decoding this form reconstructs *exactly* the
    /// vectors that were installed — the restart acceptance bar is that
    /// a warm-restored table answers `set_delay` byte-identically to the
    /// table that was snapshotted.
    pub fn to_snapshot(&self) -> String {
        let mut out = String::from("vardelay-cal-v1\n");
        for (v, d) in self.vctrls.iter().zip(&self.delays) {
            out.push_str(&format!(
                "{:016x},{:016x}\n",
                v.as_v().to_bits(),
                d.as_s().to_bits()
            ));
        }
        out
    }

    /// Parses a table previously written by
    /// [`CalibrationTable::to_snapshot`], reconstructing the exact bits.
    ///
    /// The decoder **validates instead of repairing**: a snapshot whose
    /// grid is not strictly ascending or whose delays decrease was
    /// corrupted after it was written (the encoder only ever sees
    /// monotonized tables), so it is rejected rather than re-monotonized
    /// into a plausible-looking but wrong table.
    ///
    /// # Errors
    ///
    /// Returns [`ParseCalibrationError`] for a missing/unknown header,
    /// malformed rows, non-finite values, an unsorted grid, decreasing
    /// delays, or fewer than two points.
    pub fn from_snapshot(text: &str) -> Result<Self, ParseCalibrationError> {
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, "vardelay-cal-v1")) => {}
            other => {
                return Err(ParseCalibrationError {
                    line: 1,
                    reason: format!(
                        "expected \"vardelay-cal-v1\" header, got {:?}",
                        other.map(|(_, l)| l).unwrap_or("")
                    ),
                })
            }
        }
        let mut vctrls = Vec::new();
        let mut delays = Vec::new();
        for (i, line) in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split(',');
            let parse = |field: Option<&str>, what: &str| -> Result<f64, ParseCalibrationError> {
                let raw = field.ok_or_else(|| ParseCalibrationError {
                    line: i + 1,
                    reason: format!("missing {what}"),
                })?;
                let bits =
                    u64::from_str_radix(raw.trim(), 16).map_err(|e| ParseCalibrationError {
                        line: i + 1,
                        reason: format!("bad {what} bits: {e}"),
                    })?;
                let value = f64::from_bits(bits);
                if !value.is_finite() {
                    return Err(ParseCalibrationError {
                        line: i + 1,
                        reason: format!("non-finite {what}"),
                    });
                }
                Ok(value)
            };
            let v = parse(parts.next(), "vctrl")?;
            let d = parse(parts.next(), "delay")?;
            vctrls.push(Voltage::from_v(v));
            delays.push(Time::from_s(d));
        }
        if vctrls.len() < 2 {
            return Err(ParseCalibrationError {
                line: 0,
                reason: "calibration needs at least two points".to_owned(),
            });
        }
        if !vctrls.windows(2).all(|w| w[0] < w[1]) {
            return Err(ParseCalibrationError {
                line: 0,
                reason: "vctrl grid must be strictly ascending".to_owned(),
            });
        }
        if !delays.windows(2).all(|w| w[0] <= w[1]) {
            return Err(ParseCalibrationError {
                line: 0,
                reason: "snapshot delays decrease (corrupt snapshot)".to_owned(),
            });
        }
        Ok(CalibrationTable { vctrls, delays })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(n: usize) -> Vec<Voltage> {
        (0..n)
            .map(|i| Voltage::from_v(1.5 * i as f64 / (n - 1) as f64))
            .collect()
    }

    #[test]
    fn round_trip_inversion() {
        let table = CalibrationTable::from_measurement(&grid(16), |v| {
            // S-shaped curve like Fig. 7.
            Time::from_ps(100.0 + 28.0 * (1.0 + (3.0 * (v.as_v() - 0.75)).tanh()))
        });
        for i in 0..=20 {
            let target = table.min_delay() + table.range() * (i as f64 / 20.0);
            let v = table.vctrl_for_delay(target).unwrap();
            let back = table.delay_at(v);
            assert!(
                (back - target).abs() < Time::from_ps(0.5),
                "target {target}, got {back}"
            );
        }
    }

    #[test]
    fn out_of_range_is_an_error() {
        let table =
            CalibrationTable::from_measurement(&grid(4), |v| Time::from_ps(10.0 * v.as_v()));
        let err = table.vctrl_for_delay(Time::from_ps(99.0)).unwrap_err();
        assert!((err.max.as_ps() - 15.0).abs() < 1e-9);
        assert!(err.to_string().contains("outside"));
    }

    #[test]
    fn noise_dips_are_monotonized() {
        let noisy = [0.0, 5.0, 4.8, 9.0]; // dip at index 2
        let mut i = 0;
        let table = CalibrationTable::from_measurement(&grid(4), |_| {
            let d = Time::from_ps(noisy[i]);
            i += 1;
            d
        });
        assert!(table.delays().windows(2).all(|w| w[0] <= w[1]));
        // Inversion across the flattened segment still works.
        assert!(table.vctrl_for_delay(Time::from_ps(5.0)).is_ok());
    }

    #[test]
    fn slope_and_range() {
        let table =
            CalibrationTable::from_measurement(&grid(8), |v| Time::from_ps(30.0 * v.as_v()));
        assert!((table.range().as_ps() - 45.0).abs() < 1e-9);
        assert!((table.mean_slope_s_per_v() - 30e-12).abs() < 1e-15);
    }

    #[test]
    fn csv_round_trip() {
        let table =
            CalibrationTable::from_measurement(&grid(9), |v| Time::from_ps(30.0 * v.as_v()));
        let csv = table.to_csv();
        let back = CalibrationTable::from_csv(&csv).expect("own output parses");
        assert_eq!(back.vctrls().len(), table.vctrls().len());
        for (a, b) in table.delays().iter().zip(back.delays()) {
            assert!((*a - *b).abs() < Time::from_fs(10.0));
        }
        // And the loaded table still inverts.
        let v = back.vctrl_for_delay(Time::from_ps(22.5)).expect("in span");
        assert!((v.as_v() - 0.75).abs() < 1e-6);
    }

    #[test]
    fn csv_errors_are_located() {
        let err =
            CalibrationTable::from_csv("vctrl_v,delay_ps\n0.0,1.0\nnonsense,2.0\n").unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.to_string().contains("line 3"));
        let short = CalibrationTable::from_csv("vctrl_v,delay_ps\n0.0,1.0\n").unwrap_err();
        assert!(short.reason.contains("two points"));
        let unsorted = CalibrationTable::from_csv("1.0,5.0\n0.5,3.0\n").unwrap_err();
        assert!(unsorted.reason.contains("ascending"));
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn tiny_grid_rejected() {
        let _ = CalibrationTable::from_measurement(&[Voltage::ZERO], |_| Time::ZERO);
    }

    proptest::proptest! {
        // The restart acceptance bar: a warm-restored table must answer
        // `set_delay` byte-identically to the snapshotted one, so the
        // snapshot codec must round-trip the exact bits at every seed —
        // including curves with flat (monotonized) segments and delays
        // that are not representable in any fixed decimal precision.
        #[test]
        fn snapshot_round_trips_bit_exactly(seed in proptest::any::<u64>(), n in 2usize..33) {
            let mut rng = proptest::TestRng::new(seed);
            let mut points = Vec::with_capacity(n);
            for i in 0..n {
                let v = 1.5 * i as f64 / (n - 1) as f64;
                // Awkward bits on purpose: irrational-ish multipliers and
                // occasional exact repeats (flat segments).
                let d = 17.0 + 43.0 * v * (1.0 + 0.01 * rng.next_f64());
                points.push((Voltage::from_v(v), Time::from_ps(d)));
            }
            let grid: Vec<Voltage> = points.iter().map(|&(v, _)| v).collect();
            let mut i = 0;
            let table = CalibrationTable::from_measurement(&grid, |_| {
                let d = points[i].1;
                i += 1;
                d
            });
            let snap = table.to_snapshot();
            let back = CalibrationTable::from_snapshot(&snap).expect("own output parses");
            for (a, b) in table.vctrls().iter().zip(back.vctrls()) {
                proptest::prop_assert_eq!(a.as_v().to_bits(), b.as_v().to_bits());
            }
            for (a, b) in table.delays().iter().zip(back.delays()) {
                proptest::prop_assert_eq!(a.as_s().to_bits(), b.as_s().to_bits());
            }
            // Re-encoding the decoded table reproduces the bytes exactly.
            proptest::prop_assert_eq!(back.to_snapshot(), snap);
        }
    }

    #[test]
    fn snapshot_rejects_garbage_instead_of_repairing() {
        let table =
            CalibrationTable::from_measurement(&grid(4), |v| Time::from_ps(30.0 * v.as_v()));
        let snap = table.to_snapshot();
        // Wrong header: a CSV or a random file is not a snapshot.
        assert!(CalibrationTable::from_snapshot(&table.to_csv()).is_err());
        assert!(CalibrationTable::from_snapshot("").is_err());
        // Fewer than two surviving rows.
        let one_row: String = snap.lines().take(2).map(|l| format!("{l}\n")).collect();
        assert!(CalibrationTable::from_snapshot(&one_row).is_err());
        // Decreasing delays mean post-write corruption — reject, never
        // re-monotonize into a plausible-looking wrong table.
        let mut rows: Vec<&str> = snap.lines().collect();
        rows.swap(1, 3);
        let swapped: String = rows.iter().map(|l| format!("{l}\n")).collect();
        let err = CalibrationTable::from_snapshot(&swapped).unwrap_err();
        assert!(err.reason.contains("ascending") || err.reason.contains("decrease"));
        // Non-hex bits are located by line.
        let bad = snap.replacen("vardelay-cal-v1\n", "vardelay-cal-v1\nzz,zz\n", 1);
        let err = CalibrationTable::from_snapshot(&bad).unwrap_err();
        assert_eq!(err.line, 2);
    }
}
