//! Drift sentinels: cheap seeded probe re-measurements against the
//! installed calibration table.
//!
//! A full calibration sweep re-measures every grid point (17 waveform
//! simulations for the paper's procedure). A *sentinel* instead
//! re-measures a handful of seeded probe points and reports the worst
//! residual against the delays the installed table recorded for those
//! same control voltages. Because [`FineDelayLine::measure_delay`] is a
//! pure function of the quiet configuration, the stage voltages and the
//! toggle interval — exactly the function the calibration sweep sampled
//! — an undrifted channel's residual is **exactly zero**, bit for bit.
//! Any nonzero residual is physics (temperature drift, a failed stage),
//! not measurement noise, so the classification thresholds can sit far
//! below a picosecond.
//!
//! The serving layer (`vardelay-serve`) runs sentinels from its health
//! supervisor to decide when a resident channel needs a background
//! recalibration (Drifting) or a quarantine (Broken); see DESIGN.md §15.

use crate::calibration::CalibrationTable;
use crate::combined::CombinedDelayCircuit;
use crate::error::SetDelayError;
use crate::fine::FineDelayLine;
use vardelay_runner::task_seed;
use vardelay_siggen::SplitMix64;
use vardelay_units::{Time, Voltage};

/// How a sentinel probes and how it classifies what it finds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SentinelConfig {
    /// Probe points re-measured per run (clamped to the table size).
    /// Three points cost ~3/17 of a full sweep and already see every
    /// drift mode the tempco model produces (common-mode shift and
    /// slope change).
    pub probes: usize,
    /// Toggle interval of the probe stimulus. Must match the interval
    /// the installed table was measured at (320 ps for the standard
    /// calibration) or the residual is an interval artifact, not drift.
    pub interval: Time,
    /// Residuals above this are classified [`SentinelVerdict::Drifting`]:
    /// the table is stale enough to erode the ≤1 ps setting-resolution
    /// budget and should be rebuilt in the background.
    pub drifting: Time,
    /// Residuals above this are classified [`SentinelVerdict::Broken`]:
    /// answers from the installed table are grossly wrong and the
    /// channel should be quarantined until recalibrated.
    pub broken: Time,
}

impl Default for SentinelConfig {
    fn default() -> Self {
        SentinelConfig {
            probes: 3,
            interval: Time::from_ps(320.0),
            // ~1 K of drift moves the 4-stage line by ~0.2 ps (50 fs/K
            // per stage); anything above trips the recalibration.
            drifting: Time::from_ps(0.2),
            // A 20+ K step or a dead stage lands here.
            broken: Time::from_ps(4.0),
        }
    }
}

/// What a sentinel run concluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SentinelVerdict {
    /// Every probe reproduced the table exactly (within the drifting
    /// threshold).
    Healthy,
    /// The table is measurably stale; rebuild it in the background and
    /// keep serving from it meanwhile.
    Drifting,
    /// The table is grossly wrong; stop trusting answers from it.
    Broken,
}

/// One probe point: where it measured and what it found.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SentinelProbe {
    /// The control voltage probed (a grid point of the installed table).
    pub vctrl: Voltage,
    /// The delay the installed table recorded for that voltage.
    pub expected: Time,
    /// The delay the channel produces now.
    pub measured: Time,
}

impl SentinelProbe {
    /// `measured − expected`.
    pub fn residual(&self) -> Time {
        self.measured - self.expected
    }
}

/// The outcome of one sentinel run.
#[derive(Debug, Clone, PartialEq)]
pub struct SentinelReport {
    /// Every probe, in ascending grid order.
    pub probes: Vec<SentinelProbe>,
    /// The worst absolute residual across the probes.
    pub residual: Time,
    /// The thresholds the verdict was judged against.
    pub config: SentinelConfig,
}

impl SentinelReport {
    /// Classifies the worst residual against the configured thresholds.
    pub fn verdict(&self) -> SentinelVerdict {
        if self.residual > self.config.broken {
            SentinelVerdict::Broken
        } else if self.residual > self.config.drifting {
            SentinelVerdict::Drifting
        } else {
            SentinelVerdict::Healthy
        }
    }
}

impl std::fmt::Display for SentinelReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "sentinel: {:?}, worst residual {} over {} probes",
            self.verdict(),
            self.residual,
            self.probes.len()
        )
    }
}

/// The seeded probe grid indices every sentinel flavor shares: `want`
/// distinct indices below `len` (clamped to `1..=len`), ascending,
/// derived through [`task_seed`] with the sentinel lane constant so the
/// selection never correlates with experiment randomness sharing the
/// same root seed. Pulled out as a free function so trait-level
/// sentinels in `vardelay-backend` probe the exact same grid points as
/// [`Sentinel`] — byte-identical reports for the circuit backend depend
/// on it.
pub fn probe_indices(len: usize, want: usize, seed: u64) -> Vec<usize> {
    let want = want.clamp(1, len);
    let mut rng = SplitMix64::new(task_seed(seed, 0x5e17));
    let mut picked: Vec<usize> = Vec::with_capacity(want);
    while picked.len() < want {
        let idx = (rng.next_u64() % len as u64) as usize;
        if !picked.contains(&idx) {
            picked.push(idx);
        }
    }
    picked.sort_unstable();
    picked
}

/// A drift sentinel for one channel: a snapshot of the channel's fine
/// line plus the calibration table installed at snapshot time.
///
/// The snapshot is taken by [`from_circuit`](Self::from_circuit) so the
/// caller can drop any lock protecting the live circuit before running
/// the (waveform-simulating) probes — the health supervisor in
/// `vardelay-serve` holds each channel lock only long enough to clone.
#[derive(Debug, Clone)]
pub struct Sentinel {
    fine: FineDelayLine,
    table: CalibrationTable,
    config: SentinelConfig,
}

impl Sentinel {
    /// Snapshots `circuit`'s fine line and installed table.
    ///
    /// # Errors
    ///
    /// Returns [`SetDelayError::NotCalibrated`] when the circuit has no
    /// installed table to compare against.
    pub fn from_circuit(
        circuit: &CombinedDelayCircuit,
        config: SentinelConfig,
    ) -> Result<Sentinel, SetDelayError> {
        let table = circuit
            .calibration()
            .ok_or(SetDelayError::NotCalibrated)?
            .clone();
        Ok(Sentinel {
            fine: circuit.fine().clone(),
            table,
            config,
        })
    }

    /// The seeded probe grid indices for this `(table, seed)` pair:
    /// distinct, ascending, derived through [`task_seed`] so sentinel
    /// randomness never correlates with experiment randomness sharing
    /// the same root seed.
    pub fn probe_indices(&self, seed: u64) -> Vec<usize> {
        probe_indices(self.table.vctrls().len(), self.config.probes, seed)
    }

    /// Runs the probes: re-measures each seeded grid point through the
    /// same quiet-model path the calibration sweep used and reports the
    /// worst residual against the installed table.
    pub fn run(&self, seed: u64) -> SentinelReport {
        let vctrls = self.table.vctrls();
        let delays = self.table.delays();
        let mut probes = Vec::with_capacity(self.config.probes);
        let mut residual = Time::ZERO;
        for idx in self.probe_indices(seed) {
            let mut probe = self.fine.clone();
            probe.set_vctrl(vctrls[idx]);
            let measured = probe.measure_delay(self.config.interval);
            let p = SentinelProbe {
                vctrl: vctrls[idx],
                expected: delays[idx],
                measured,
            };
            if p.residual().abs() > residual {
                residual = p.residual().abs();
            }
            probes.push(p);
        }
        SentinelReport {
            probes,
            residual,
            config: self.config,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::drift::TempCo;

    fn calibrated(config: &ModelConfig, seed: u64) -> CombinedDelayCircuit {
        let mut c = CombinedDelayCircuit::new(config, seed);
        c.calibrate();
        c
    }

    /// The property the serve health loop leans on: a channel that has
    /// not drifted reproduces its own table **exactly** — zero residual,
    /// bit for bit, at every seed (the measurement is a pure function of
    /// the quiet configuration, so noise seeds are irrelevant).
    #[test]
    fn undrifted_residual_is_exactly_zero_at_every_seed() {
        let cfg = ModelConfig::paper_prototype();
        for seed in [0u64, 1, 2, 17, 0x5e7e, u64::MAX] {
            let circuit = calibrated(&cfg, seed);
            let sentinel = Sentinel::from_circuit(&circuit, SentinelConfig::default()).unwrap();
            for probe_seed in [0u64, 7, 42, 9999] {
                let report = sentinel.run(probe_seed);
                assert_eq!(
                    report.residual,
                    Time::ZERO,
                    "seed {seed}, probe seed {probe_seed}: {report}"
                );
                assert_eq!(report.verdict(), SentinelVerdict::Healthy);
                for p in &report.probes {
                    assert_eq!(p.measured, p.expected, "vctrl {}", p.vctrl);
                }
            }
        }
    }

    #[test]
    fn probe_indices_are_seeded_distinct_and_in_range() {
        let circuit = calibrated(&ModelConfig::paper_prototype(), 1);
        let sentinel = Sentinel::from_circuit(&circuit, SentinelConfig::default()).unwrap();
        let a = sentinel.probe_indices(5);
        let b = sentinel.probe_indices(5);
        assert_eq!(a, b, "same seed, same probes");
        assert_eq!(a.len(), 3);
        let len = 17;
        for w in a.windows(2) {
            assert!(w[0] < w[1], "ascending and distinct: {a:?}");
        }
        assert!(a.iter().all(|&i| i < len));
        // Different seeds eventually pick different grids.
        assert!(
            (0..32).any(|s| sentinel.probe_indices(s) != a),
            "probe selection ignores the seed"
        );
    }

    #[test]
    fn an_uncalibrated_circuit_is_an_error() {
        let circuit = CombinedDelayCircuit::new(&ModelConfig::paper_prototype(), 1);
        assert!(matches!(
            Sentinel::from_circuit(&circuit, SentinelConfig::default()),
            Err(SetDelayError::NotCalibrated)
        ));
    }

    /// A stale table on a drifted channel shows up as a residual of the
    /// right order: small steps classify Drifting, large steps Broken.
    #[test]
    fn temperature_drift_classifies_by_magnitude() {
        let cold = ModelConfig::paper_prototype();
        let table = calibrated(&cold, 1).calibration().unwrap().clone();
        let tempco = TempCo::default();
        let mut residuals = Vec::new();
        for (delta_k, expect) in [
            (0.0, SentinelVerdict::Healthy),
            (8.0, SentinelVerdict::Drifting),
            (40.0, SentinelVerdict::Broken),
        ] {
            let hot_cfg = cold.at_temperature_offset(delta_k, &tempco);
            let mut hot = CombinedDelayCircuit::new(&hot_cfg, 1);
            hot.install_calibration(table.clone());
            let sentinel = Sentinel::from_circuit(&hot, SentinelConfig::default()).unwrap();
            let report = sentinel.run(0);
            assert_eq!(
                report.verdict(),
                expect,
                "delta {delta_k} K: residual {}",
                report.residual
            );
            residuals.push(report.residual);
        }
        assert!(
            residuals[0] < residuals[1] && residuals[1] < residuals[2],
            "residual must grow with the step: {residuals:?}"
        );
    }
}
