//! Environmental drift and recalibration.
//!
//! A deskew installation lives under the DIB for months; buffer delays
//! and slew rates drift with temperature, so a calibration taken at one
//! temperature mis-programs delays at another. This module models the
//! drift (typical ECL tempcos) and provides the operational answer:
//! periodic recalibration.

use crate::config::ModelConfig;
use vardelay_units::Time;

/// Typical temperature coefficients of the buffer path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TempCo {
    /// Propagation-delay drift per active stage, per kelvin.
    pub prop_delay_per_k: Time,
    /// Relative slew-rate drift per kelvin (negative: hotter = slower).
    pub slew_rel_per_k: f64,
    /// Relative output-amplitude drift per kelvin.
    pub amplitude_rel_per_k: f64,
}

impl Default for TempCo {
    /// ECL-class coefficients: ~50 fs/K of delay per stage, −0.15 %/K of
    /// slew, −0.05 %/K of amplitude.
    fn default() -> Self {
        TempCo {
            prop_delay_per_k: Time::from_fs(50.0),
            slew_rel_per_k: -0.0015,
            amplitude_rel_per_k: -0.0005,
        }
    }
}

impl ModelConfig {
    /// Returns this configuration drifted by `delta_k` kelvin from its
    /// calibration point, using the given coefficients.
    ///
    /// # Panics
    ///
    /// Panics if the drifted configuration becomes unphysical (slew or
    /// amplitude driven non-positive), which only happens for absurd
    /// `delta_k`.
    pub fn at_temperature_offset(&self, delta_k: f64, tempco: &TempCo) -> ModelConfig {
        let mut cfg = self.clone();
        let dp = tempco.prop_delay_per_k * delta_k;
        cfg.vga.core.prop_delay = (cfg.vga.core.prop_delay + dp).max(Time::ZERO);
        cfg.fixed.prop_delay = (cfg.fixed.prop_delay + dp).max(Time::ZERO);
        let slew_factor = 1.0 + tempco.slew_rel_per_k * delta_k;
        assert!(slew_factor > 0.0, "temperature drift drove slew negative");
        cfg.vga.core.slew_v_per_s *= slew_factor;
        cfg.fixed.slew_v_per_s *= slew_factor;
        let amp_factor = 1.0 + tempco.amplitude_rel_per_k * delta_k;
        assert!(
            amp_factor > 0.0,
            "temperature drift drove amplitude negative"
        );
        cfg.vga.amp_min = cfg.vga.amp_min * amp_factor;
        cfg.vga.amp_max = cfg.vga.amp_max * amp_factor;
        cfg.validate();
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combined::CombinedDelayCircuit;
    use crate::fine::FineDelayLine;

    /// Realized relative delay of a drifted circuit programmed with a
    /// possibly stale calibration.
    fn realized_error_at(delta_k: f64, recalibrate: bool) -> Time {
        let cold = ModelConfig::paper_prototype().quiet();
        let hot = cold.at_temperature_offset(delta_k, &TempCo::default());

        // Calibrate on the cold configuration…
        let mut reference = CombinedDelayCircuit::new(&cold, 4);
        let cold_cal = reference.calibrate().clone();

        // …but operate the hot hardware.
        let mut circuit = CombinedDelayCircuit::new(&hot, 4);
        if recalibrate {
            circuit.calibrate();
        } else {
            circuit.install_calibration(cold_cal);
        }
        let target = Time::from_ps(60.0);
        let setting = circuit.set_delay(target).expect("target in range");

        // Measure what the hot fine line actually does at that Vctrl.
        let mut probe = FineDelayLine::new(&hot, 4);
        probe.set_vctrl(setting.vctrl);
        let hot_delay = probe.measure_delay(Time::from_ps(320.0));
        probe.set_vctrl(vardelay_units::Voltage::ZERO);
        let hot_zero = probe.measure_delay(Time::from_ps(320.0));
        let realized = circuit.coarse().tap_delay(setting.tap) + (hot_delay - hot_zero);
        (realized - target).abs()
    }

    #[test]
    fn stale_calibration_drifts_with_temperature() {
        let small = realized_error_at(5.0, false);
        let large = realized_error_at(40.0, false);
        assert!(
            large > small,
            "40 K drift ({large}) should beat 5 K ({small})"
        );
        assert!(
            large > Time::from_ps(0.5),
            "40 K of drift should be measurable: {large}"
        );
    }

    #[test]
    fn recalibration_restores_accuracy() {
        let stale = realized_error_at(40.0, false);
        let fresh = realized_error_at(40.0, true);
        assert!(
            fresh < stale,
            "recalibration ({fresh}) should beat stale ({stale})"
        );
        assert!(
            fresh < Time::from_ps(1.0),
            "recalibrated error {fresh} should be sub-picosecond"
        );
    }

    #[test]
    fn drift_changes_the_fine_range() {
        let cold = ModelConfig::paper_prototype().quiet();
        let hot = cold.at_temperature_offset(40.0, &TempCo::default());
        let cold_range = FineDelayLine::new(&cold, 1).delay_range(Time::from_ps(1000.0));
        let hot_range = FineDelayLine::new(&hot, 1).delay_range(Time::from_ps(1000.0));
        // Slower slew at temperature widens the amplitude-dependent delay.
        assert!(hot_range > cold_range, "{hot_range} vs {cold_range}");
    }

    #[test]
    fn zero_offset_is_identity() {
        let cfg = ModelConfig::paper_prototype();
        let same = cfg.at_temperature_offset(0.0, &TempCo::default());
        assert_eq!(cfg, same);
    }

    #[test]
    #[should_panic(expected = "slew")]
    fn absurd_drift_is_rejected() {
        let _ = ModelConfig::paper_prototype().at_temperature_offset(1e6, &TempCo::default());
    }

    #[test]
    #[should_panic(expected = "amplitude")]
    fn absurd_amplitude_drift_is_rejected() {
        // Slew coefficient zeroed so the amplitude assert is the one that
        // fires — pins the documented panic for each unphysical factor.
        let tempco = TempCo {
            slew_rel_per_k: 0.0,
            ..TempCo::default()
        };
        let _ = ModelConfig::paper_prototype().at_temperature_offset(3000.0, &tempco);
    }

    #[test]
    fn cooling_drift_is_also_physical() {
        // Negative offsets raise slew/amplitude; prop_delay is clamped at
        // zero rather than going negative.
        let cfg = ModelConfig::paper_prototype().at_temperature_offset(-60.0, &TempCo::default());
        cfg.validate();
        assert!(cfg.vga.core.prop_delay >= Time::ZERO);
        assert!(cfg.fixed.prop_delay >= Time::ZERO);
    }

    proptest::proptest! {
        /// Any physically plausible operating-temperature excursion (a DIB
        /// runs perhaps ±60 K around its calibration point) must yield a
        /// configuration that still validates and keeps every drifted
        /// parameter physical.
        #[test]
        fn physical_configs_survive_realistic_drift(delta_k in -60.0f64..60.0) {
            let base = ModelConfig::paper_prototype();
            let hot = base.at_temperature_offset(delta_k, &TempCo::default());
            hot.validate();
            proptest::prop_assert!(hot.vga.core.slew_v_per_s > 0.0, "delta {delta_k}");
            proptest::prop_assert!(hot.fixed.slew_v_per_s > 0.0);
            proptest::prop_assert!(hot.vga.core.prop_delay >= Time::ZERO);
            proptest::prop_assert!(hot.vga.amp_max > hot.vga.amp_min);
            // Drift is bounded: a ±60 K excursion moves the per-stage
            // delay by at most 60 · 50 fs = 3 ps.
            let dp = (hot.vga.core.prop_delay - base.vga.core.prop_delay).abs();
            proptest::prop_assert!(dp <= Time::from_ps(3.0 + 1e-9), "delta {delta_k}: {dp}");
        }
    }
}
