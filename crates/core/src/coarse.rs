//! The coarse delay section: 1:4 fanout → four controlled-length lines →
//! 4:1 mux (paper §3, Fig. 8).

use crate::config::ModelConfig;
use vardelay_analog::mux::SelectTapError;
use vardelay_analog::{AnalogBlock, FanoutBuffer, Mux4, TransmissionLine};
use vardelay_units::Time;
use vardelay_waveform::Waveform;

/// The 4-tap coarse delay selector with 33 ps designed steps.
///
/// Two digital select lines pick which of the four line copies reaches the
/// output; only two levels of active logic sit in the path, which is why
/// the paper chose this over cascading a second fine circuit ("we must be
/// concerned with the undesirable noise and jitter added by each stage").
///
/// # Examples
///
/// ```
/// use vardelay_core::{CoarseDelaySection, ModelConfig};
///
/// let mut coarse = CoarseDelaySection::new(&ModelConfig::paper_prototype(), 5);
/// coarse.select_tap(2)?;
/// assert_eq!(coarse.selected_tap(), 2);
/// // Designed 66 ps, instance deviation +4 ps (Fig. 9 measures 70 ps).
/// assert!((coarse.tap_delay(2).as_ps() - 70.0).abs() < 1e-9);
/// # Ok::<(), vardelay_analog::SelectTapError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CoarseDelaySection {
    fanout: FanoutBuffer,
    lines: Vec<TransmissionLine>,
    mux: Mux4,
    tap_delays: [Time; 4],
}

impl CoarseDelaySection {
    /// Builds the section from a model configuration: tap delays are the
    /// designed values plus this instance's static deviations.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or any resulting tap delay
    /// is negative.
    pub fn new(config: &ModelConfig, seed: u64) -> Self {
        config.validate();
        let mut tap_delays = [Time::ZERO; 4];
        for (i, d) in tap_delays.iter_mut().enumerate() {
            *d = config.coarse_taps[i] + config.coarse_tap_deviations[i];
            assert!(*d >= Time::ZERO, "tap {i} delay must be non-negative");
        }
        let lines = tap_delays
            .iter()
            .map(|&d| TransmissionLine::new(d))
            .collect();
        CoarseDelaySection {
            fanout: FanoutBuffer::new(4, config.fixed.clone(), seed.wrapping_add(0xfa)),
            lines,
            mux: Mux4::new(config.fixed.clone(), seed.wrapping_add(0x4d)),
            tap_delays,
        }
    }

    /// Builds a section whose tap deviations are drawn randomly,
    /// `N(0, sigma)` per non-zero tap — a manufacturing-lot model, as
    /// opposed to the paper-matched instance in
    /// [`ModelConfig::paper_prototype`].
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid, `sigma` is negative, or a
    /// drawn tap would go negative (absurd `sigma`).
    pub fn with_random_tolerance(config: &ModelConfig, sigma: Time, seed: u64) -> Self {
        assert!(sigma >= Time::ZERO, "tolerance must be non-negative");
        let mut rng = vardelay_siggen::SplitMix64::new(seed);
        let mut cfg = config.clone();
        cfg.coarse_tap_deviations = [Time::ZERO; 4];
        for dev in cfg.coarse_tap_deviations.iter_mut().skip(1) {
            *dev = sigma * rng.gaussian();
        }
        Self::new(&cfg, seed)
    }

    /// Selects coarse tap `index` (0..4).
    ///
    /// # Errors
    ///
    /// Returns [`SelectTapError`] if `index >= 4`.
    pub fn select_tap(&mut self, index: usize) -> Result<(), SelectTapError> {
        self.mux.select(index)
    }

    /// The currently selected tap.
    pub fn selected_tap(&self) -> usize {
        self.mux.selected()
    }

    /// The differential delay of tap `index` relative to an ideal zero tap
    /// (designed value plus instance deviation).
    ///
    /// # Panics
    ///
    /// Panics if `index >= 4`.
    pub fn tap_delay(&self, index: usize) -> Time {
        self.tap_delays[index]
    }

    /// All four tap delays.
    pub fn tap_delays(&self) -> [Time; 4] {
        self.tap_delays
    }

    /// The coarse section's maximum differential delay (last tap).
    pub fn max_tap_delay(&self) -> Time {
        self.tap_delays[3]
    }

    /// Fixed through-delay of the two active stages (fanout + mux),
    /// common to every tap.
    pub fn through_delay(&self) -> Time {
        self.fanout.prop_delay() + self.mux.prop_delay()
    }

    /// Measures the four tap delays relative to tap 0 using the waveform
    /// engine on the given stimulus — the Fig. 9 experiment.
    pub fn measure_taps(&mut self, input: &Waveform, ui: Time) -> [Time; 4] {
        use vardelay_waveform::to_edge_stream;
        let restore = self.selected_tap();
        let mut measured = [Time::ZERO; 4];
        let mut tap0: Option<vardelay_siggen::EdgeStream> = None;
        #[allow(clippy::needless_range_loop)] // tap selects hardware AND indexes results
        for tap in 0..4 {
            self.select_tap(tap).expect("tap index in range");
            let out = self.process(input);
            let stream = to_edge_stream(&out, 0.0, ui);
            match &tap0 {
                None => {
                    tap0 = Some(stream);
                }
                Some(reference) => {
                    measured[tap] = vardelay_measure::mean_delay(reference, &stream)
                        .expect("tap outputs carry the same edge pattern");
                }
            }
        }
        self.select_tap(restore).expect("restoring a valid tap");
        measured
    }
}

impl AnalogBlock for CoarseDelaySection {
    fn process(&mut self, input: &Waveform) -> Waveform {
        let branches = self.fanout.fan_out(input);
        let taps: Vec<Waveform> = branches
            .iter()
            .zip(&mut self.lines)
            .map(|(branch, line)| line.process(branch))
            .collect();
        self.mux.mux(&taps)
    }

    fn name(&self) -> &str {
        "coarse-delay"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vardelay_siggen::{BitPattern, EdgeStream};
    use vardelay_units::BitRate;
    use vardelay_waveform::Waveform;

    fn quiet_section() -> CoarseDelaySection {
        CoarseDelaySection::new(&ModelConfig::paper_prototype().quiet(), 1)
    }

    #[test]
    fn prototype_taps_match_fig9() {
        let c = quiet_section();
        let taps: Vec<f64> = (0..4).map(|i| c.tap_delay(i).as_ps()).collect();
        assert_eq!(taps, vec![0.0, 33.0, 70.0, 95.0]);
    }

    #[test]
    fn measured_taps_track_designed_taps() {
        let mut c = quiet_section();
        let rate = BitRate::from_gbps(2.0);
        let stream = EdgeStream::nrz(&BitPattern::clock(16), rate);
        let cfg = ModelConfig::paper_prototype().render;
        let wf = Waveform::render(&stream, &cfg);
        let measured = c.measure_taps(&wf, rate.bit_period());
        for tap in 1..4 {
            let expect = c.tap_delay(tap).as_ps();
            let got = measured[tap].as_ps();
            assert!((got - expect).abs() < 1.0, "tap {tap}: {got} vs {expect}");
        }
    }

    #[test]
    fn tap_selection_validates() {
        let mut c = quiet_section();
        assert!(c.select_tap(3).is_ok());
        assert!(c.select_tap(4).is_err());
        assert_eq!(c.selected_tap(), 3);
    }

    #[test]
    fn through_delay_counts_two_stages() {
        let c = quiet_section();
        // Two 20 ps stages in the default configuration.
        assert!((c.through_delay().as_ps() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn random_tolerance_spreads_the_taps() {
        let cfg = ModelConfig::paper_prototype().quiet();
        let a = CoarseDelaySection::with_random_tolerance(&cfg, Time::from_ps(1.5), 7);
        let b = CoarseDelaySection::with_random_tolerance(&cfg, Time::from_ps(1.5), 8);
        assert_ne!(a.tap_delays(), b.tap_delays());
        // Tap 0 stays the reference; others deviate by a few ps at most.
        assert_eq!(a.tap_delay(0), Time::ZERO);
        for tap in 1..4 {
            let dev = (a.tap_delay(tap) - cfg.coarse_taps[tap]).abs();
            assert!(dev < Time::from_ps(8.0), "tap {tap} deviates {dev}");
        }
        // Same seed reproduces the same instance.
        let c = CoarseDelaySection::with_random_tolerance(&cfg, Time::from_ps(1.5), 7);
        assert_eq!(a.tap_delays(), c.tap_delays());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_tap_rejected() {
        let mut cfg = ModelConfig::paper_prototype();
        cfg.coarse_tap_deviations[0] = Time::from_ps(-10.0);
        let _ = CoarseDelaySection::new(&cfg, 1);
    }
}
