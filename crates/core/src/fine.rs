//! The fine-adjustment delay line: a common-`Vctrl` cascade of
//! variable-gain buffers with an amplitude-recovery output stage
//! (paper §2, Fig. 6).

use crate::config::ModelConfig;
use vardelay_analog::{
    measure_delay_table_cached_with, AnalogBlock, CharacterizedDelay, DelayTable, LimitingBuffer,
    VgaBuffer,
};
use vardelay_runner::Runner;
use vardelay_siggen::{BitPattern, EdgeStream};
use vardelay_units::{BitRate, Time, Voltage};
use vardelay_waveform::{to_edge_stream, Waveform};

/// The N-stage fine delay line.
///
/// All variable-gain stages share one control voltage "for simplicity"
/// (paper §2); the output stage restores the full logic swing so the
/// circuit can drive the coarse section or the DUT.
///
/// # Examples
///
/// ```
/// use vardelay_core::{FineDelayLine, ModelConfig};
/// use vardelay_units::Voltage;
///
/// let mut line = FineDelayLine::new(&ModelConfig::paper_prototype(), 7);
/// assert_eq!(line.stage_count(), 4);
/// line.set_vctrl(Voltage::from_v(1.2));
/// assert!((line.vctrl().as_v() - 1.2).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct FineDelayLine {
    stages: Vec<VgaBuffer>,
    output_stage: LimitingBuffer,
    vctrl: Voltage,
    config: ModelConfig,
}

impl FineDelayLine {
    /// Builds the line described by `config` (its `stages` field sets the
    /// cascade depth), seeding each stage's noise stream independently.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: &ModelConfig, seed: u64) -> Self {
        config.validate();
        let stages: Vec<VgaBuffer> = (0..config.stages)
            .map(|i| VgaBuffer::new(config.vga.clone(), seed.wrapping_add(i as u64 * 0x9e37)))
            .collect();
        let output_stage = LimitingBuffer::new(config.fixed.clone(), seed.wrapping_add(0xbeef));
        let mid = config.vga.vctrl_min.lerp(config.vga.vctrl_max, 0.5);
        let mut line = FineDelayLine {
            stages,
            output_stage,
            vctrl: mid,
            config: config.clone(),
        };
        line.set_vctrl(mid);
        line
    }

    /// Number of variable-gain stages.
    pub fn stage_count(&self) -> usize {
        self.stages.len()
    }

    /// The common control voltage.
    pub fn vctrl(&self) -> Voltage {
        self.vctrl
    }

    /// Applies the common control voltage to every stage.
    pub fn set_vctrl(&mut self, vctrl: Voltage) {
        self.vctrl = vctrl.clamp(self.config.vga.vctrl_min, self.config.vga.vctrl_max);
        for stage in &mut self.stages {
            stage.set_vctrl(self.vctrl);
        }
    }

    /// Applies an individual control voltage per stage — the alternative
    /// the paper rejects "for simplicity" (§2). [`FineDelayLine::vctrl`]
    /// then reports the mean. Useful for trimming stage mismatch or
    /// splitting a target between slow and fast stages.
    ///
    /// # Panics
    ///
    /// Panics if `vctrls.len()` differs from the stage count.
    pub fn set_stage_vctrls(&mut self, vctrls: &[Voltage]) {
        assert_eq!(
            vctrls.len(),
            self.stages.len(),
            "one control voltage per stage required"
        );
        for (stage, &v) in self.stages.iter_mut().zip(vctrls) {
            stage.set_vctrl(v.clamp(self.config.vga.vctrl_min, self.config.vga.vctrl_max));
        }
        self.vctrl = vctrls.iter().copied().sum::<Voltage>() / vctrls.len() as f64;
    }

    /// The per-stage control voltages currently applied.
    pub fn stage_vctrls(&self) -> Vec<Voltage> {
        self.stages.iter().map(|s| s.vctrl()).collect()
    }

    /// Bottom of the usable control range.
    pub fn vctrl_min(&self) -> Voltage {
        self.config.vga.vctrl_min
    }

    /// Top of the usable control range.
    pub fn vctrl_max(&self) -> Voltage {
        self.config.vga.vctrl_max
    }

    /// The model configuration this line was built from.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// Measures the mean propagation delay at the current `Vctrl` for a
    /// 1010… stimulus toggling every `interval`, using the waveform engine
    /// on a noise-free copy (clean mean, as on a bench with averaging).
    ///
    /// # Panics
    ///
    /// Panics if the line loses the stimulus entirely (no measurable
    /// crossings). Fault-tolerant callers should use
    /// [`FineDelayLine::try_measure_delay`].
    pub fn measure_delay(&self, interval: Time) -> Time {
        self.try_measure_delay(interval)
            .expect("the fine line passes the stimulus")
    }

    /// [`FineDelayLine::measure_delay`] returning a typed error instead
    /// of panicking when the line output carries no measurable edges
    /// (e.g. a degenerate configuration or a dead driver under fault
    /// injection) — the characterization path for quarantined channels.
    ///
    /// # Errors
    ///
    /// Returns [`vardelay_measure::MeasureDelayError`] when no
    /// steady-state delay can be paired from the output.
    pub fn try_measure_delay(
        &self,
        interval: Time,
    ) -> Result<Time, vardelay_measure::MeasureDelayError> {
        let quiet_cfg = self.config.quiet();
        let mut quiet = FineDelayLine::new(&quiet_cfg, 0);
        quiet.set_stage_vctrls(&self.stage_vctrls());
        let rate = BitRate::from_bps(1.0 / interval.as_s());
        let stimulus = EdgeStream::nrz(&BitPattern::clock(24), rate);
        let wf = Waveform::render(&stimulus, &self.config.render);
        let out = quiet.process(&wf);
        let out_stream = to_edge_stream(&out, 0.0, rate.bit_period());
        vardelay_waveform::pool::recycle(out.into_samples());
        vardelay_waveform::pool::recycle(wf.into_samples());
        // Steady-state, polarity-safe tail pairing.
        vardelay_measure::tail_mean_delay(&stimulus, &out_stream, 8)
    }

    /// The fine adjustment range at a toggle `interval`: delay at maximum
    /// `Vctrl` minus delay at minimum `Vctrl` — the quantity plotted
    /// against frequency in Fig. 15. The two endpoint measurements fan
    /// out on the global [`Runner`].
    pub fn delay_range(&self, interval: Time) -> Time {
        self.delay_range_with(Runner::global(), interval)
    }

    /// [`FineDelayLine::delay_range`] on an explicit [`Runner`]. Each
    /// endpoint probes a fresh clone of the line, so the result is
    /// bit-identical to the serial pair at every thread count.
    pub fn delay_range_with(&self, runner: Runner, interval: Time) -> Time {
        let endpoints = [self.vctrl_min(), self.vctrl_max()];
        let measured = runner.par_map(&endpoints, |_, &v| {
            let mut probe = self.clone();
            probe.set_vctrl(v);
            probe.measure_delay(interval)
        });
        measured[1] - measured[0]
    }

    /// Characterizes the full line into a `delay(Vctrl, interval)` table
    /// using the waveform engine (noise disabled). Grid cells are measured
    /// in parallel on the global [`Runner`], and the table is memoized by
    /// the quiet model's fingerprint — the closure builds a fresh seed-0
    /// noise-free line per cell, so the result depends only on the
    /// configuration and grids.
    pub fn characterize(&self, vctrls: &[Voltage], intervals: &[Time]) -> DelayTable {
        self.characterize_with(Runner::global(), vctrls, intervals)
    }

    /// [`FineDelayLine::characterize`] on an explicit [`Runner`] (used by
    /// determinism tests to force thread counts).
    pub fn characterize_with(
        &self,
        runner: Runner,
        vctrls: &[Voltage],
        intervals: &[Time],
    ) -> DelayTable {
        let cfg = self.config.quiet();
        let render = self.config.render.clone();
        let key = cfg.fingerprint();
        let build = move |v: Voltage| -> Box<dyn AnalogBlock + Send> {
            let mut line = FineDelayLine::new(&cfg, 0);
            line.set_vctrl(v);
            Box::new(line)
        };
        measure_delay_table_cached_with(runner, key, &build, vctrls, intervals, &render)
    }

    /// Builds the fast edge-domain model of this line: the characterized
    /// delay table plus the aggregate random jitter of `stages + 1` active
    /// components.
    pub fn edge_model(
        &self,
        vctrls: &[Voltage],
        intervals: &[Time],
        seed: u64,
    ) -> CharacterizedDelay {
        let table = self.characterize(vctrls, intervals);
        let rj = self.config.chain_rj(self.stage_count() + 1);
        CharacterizedDelay::new(table, self.vctrl, rj, seed)
    }

    /// The default characterization grids: 9 control points over the
    /// control span × 8 toggle intervals from 70 ps to 2 ns.
    pub fn default_grids(&self) -> (Vec<Voltage>, Vec<Time>) {
        let n_v = 9;
        let vctrls = (0..n_v)
            .map(|i| {
                self.vctrl_min()
                    .lerp(self.vctrl_max(), i as f64 / (n_v - 1) as f64)
            })
            .collect();
        let intervals = [70.0, 90.0, 110.0, 156.25, 210.0, 320.0, 640.0, 2000.0]
            .iter()
            .map(|&ps| Time::from_ps(ps))
            .collect();
        (vctrls, intervals)
    }
}

impl FineDelayLine {
    /// Processes with a time-varying common control voltage — the
    /// waveform-domain jitter-injection path: every variable-gain stage
    /// follows the same `vctrl` trace while the data flows through.
    pub fn process_modulated(&mut self, input: &Waveform, vctrl: &Waveform) -> Waveform {
        let Some((first, rest)) = self.stages.split_first_mut() else {
            return self.output_stage.process(input);
        };
        let mut wf = first.process_modulated(input, vctrl);
        for stage in rest {
            let next = stage.process_modulated(&wf, vctrl);
            vardelay_waveform::pool::recycle(core::mem::replace(&mut wf, next).into_samples());
        }
        let out = self.output_stage.process(&wf);
        vardelay_waveform::pool::recycle(wf.into_samples());
        out
    }
}

impl AnalogBlock for FineDelayLine {
    fn process(&mut self, input: &Waveform) -> Waveform {
        // Feed `input` to the first stage directly, then recycle each
        // intermediate trace as soon as the next stage has consumed it —
        // the steady-state solve path allocates nothing per stage.
        let Some((first, rest)) = self.stages.split_first_mut() else {
            return self.output_stage.process(input);
        };
        let mut wf = first.process(input);
        for stage in rest {
            let next = stage.process(&wf);
            vardelay_waveform::pool::recycle(core::mem::replace(&mut wf, next).into_samples());
        }
        let out = self.output_stage.process(&wf);
        vardelay_waveform::pool::recycle(wf.into_samples());
        out
    }

    fn name(&self) -> &str {
        "fine-delay-line"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_line(stages: usize) -> FineDelayLine {
        let mut cfg = ModelConfig::paper_prototype().quiet();
        cfg.stages = stages;
        FineDelayLine::new(&cfg, 1)
    }

    #[test]
    fn four_stage_range_matches_paper_anchor() {
        // Fig. 7: ~56 ps range over the 1.5 V span at low rate. Accept the
        // 45–70 ps band: the shape matters, not the exact figure.
        let line = quiet_line(4);
        let range = line.delay_range(Time::from_ps(1000.0)).as_ps();
        assert!((45.0..70.0).contains(&range), "4-stage range {range} ps");
    }

    #[test]
    fn two_stage_range_is_roughly_half() {
        let four = quiet_line(4).delay_range(Time::from_ps(1000.0)).as_ps();
        let two = quiet_line(2).delay_range(Time::from_ps(1000.0)).as_ps();
        assert!(two < four * 0.7, "two {two} vs four {four}");
        assert!(two > four * 0.3, "two {two} vs four {four}");
    }

    #[test]
    fn range_shrinks_at_high_toggle_rates() {
        // Fig. 15: the range collapses as the clock frequency rises.
        let line = quiet_line(4);
        let slow = line.delay_range(Time::from_ps(1000.0)).as_ps();
        let fast = line.delay_range(Time::from_ps(78.0)).as_ps(); // 6.4 GHz RZ
        assert!(fast < slow * 0.75, "slow {slow} fast {fast}");
        assert!(fast > 5.0, "range collapsed entirely: {fast}");
    }

    #[test]
    fn delay_is_monotone_in_vctrl() {
        let mut line = quiet_line(4);
        let interval = Time::from_ps(500.0);
        let mut prev: Option<Time> = None;
        for i in 0..=8 {
            line.set_vctrl(Voltage::from_v(1.5 * i as f64 / 8.0));
            let d = line.measure_delay(interval);
            if let Some(p) = prev {
                assert!(d >= p - Time::from_fs(300.0), "not monotone: {d} < {p}");
            }
            prev = Some(d);
        }
    }

    #[test]
    fn edge_model_agrees_with_waveform_engine() {
        let mut line = quiet_line(4);
        let (vctrls, intervals) = line.default_grids();
        let mut model = line.edge_model(&vctrls, &intervals, 3);

        let interval = Time::from_ps(320.0);
        for v in [0.3, 0.75, 1.2] {
            let vctrl = Voltage::from_v(v);
            line.set_vctrl(vctrl);
            model.set_vctrl(vctrl);
            let wf_delay = line.measure_delay(interval);
            let rate = BitRate::from_bps(1.0 / interval.as_s());
            let stim = EdgeStream::nrz(&BitPattern::clock(24), rate);
            let out = vardelay_analog::EdgeTransform::transform(&mut model, &stim);
            let edge_delay = vardelay_measure::mean_delay(&stim, &out).unwrap();
            let err = (wf_delay - edge_delay).abs();
            assert!(
                err < Time::from_ps(1.0),
                "engines disagree at {vctrl}: {wf_delay} vs {edge_delay}"
            );
        }
    }

    #[test]
    fn per_stage_vctrls_interpolate_the_common_settings() {
        let line = quiet_line(4);
        let interval = Time::from_ps(500.0);
        let mut lo = line.clone();
        lo.set_vctrl(Voltage::ZERO);
        let d_lo = lo.measure_delay(interval);
        let mut hi = line.clone();
        hi.set_vctrl(Voltage::from_v(1.5));
        let d_hi = hi.measure_delay(interval);
        // One stage at max, three at min: delay strictly between the
        // all-min and all-max settings.
        let mut mixed = line.clone();
        mixed.set_stage_vctrls(&[
            Voltage::from_v(1.5),
            Voltage::ZERO,
            Voltage::ZERO,
            Voltage::ZERO,
        ]);
        let d_mixed = mixed.measure_delay(interval);
        assert!(d_mixed > d_lo, "{d_mixed} vs {d_lo}");
        assert!(d_mixed < d_hi, "{d_mixed} vs {d_hi}");
        assert_eq!(mixed.stage_vctrls().len(), 4);
    }

    #[test]
    #[should_panic(expected = "one control voltage per stage")]
    fn per_stage_vctrls_validate_length() {
        let mut line = quiet_line(4);
        line.set_stage_vctrls(&[Voltage::ZERO]);
    }

    #[test]
    fn vctrl_clamps_to_control_range() {
        let mut line = quiet_line(2);
        line.set_vctrl(Voltage::from_v(99.0));
        assert_eq!(line.vctrl(), line.vctrl_max());
        line.set_vctrl(Voltage::from_v(-99.0));
        assert_eq!(line.vctrl(), line.vctrl_min());
    }
}
