//! The multi-channel delay unit — the paper's conclusion: "We have
//! recently built a 4-channel version of this circuit for deskewing
//! parallel data buses from an ATE."
//!
//! A [`MultiChannelDelay`] packages N combined circuits with realistic
//! per-instance manufacturing variation (buffer delay spread, slew-rate
//! tolerance, coarse-line etch tolerance) and supports two calibration
//! strategies:
//!
//! * **per-channel** — each circuit measures its own transfer curve
//!   (slow, accurate);
//! * **shared** — channel 0's curve is reused for all (fast); the
//!   residual channel-to-channel error is exactly the instance spread,
//!   which the <5 ps budget must absorb.

use crate::combined::{CombinedDelayCircuit, DelaySetting};
use crate::config::ModelConfig;
use crate::error::SetDelayError;
use vardelay_siggen::SplitMix64;
use vardelay_units::{Time, Voltage};

/// Manufacturing-variation magnitudes applied per channel instance.
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceSpread {
    /// 1σ spread of each stage's fixed propagation delay.
    pub prop_delay_sigma: Time,
    /// 1σ relative spread of the slew rate (affects the fine range).
    pub slew_rel_sigma: f64,
    /// 1σ spread of each coarse tap's length error.
    pub tap_sigma: Time,
}

impl Default for InstanceSpread {
    /// Typical board-to-board tolerances: 1 ps of buffer delay spread,
    /// 2 % slew tolerance, 1.5 ps of line-etch tolerance.
    fn default() -> Self {
        InstanceSpread {
            prop_delay_sigma: Time::from_ps(1.0),
            slew_rel_sigma: 0.02,
            tap_sigma: Time::from_ps(1.5),
        }
    }
}

/// Calibration strategy for a multi-channel unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CalibrationStrategy {
    /// Every channel measures its own transfer curve.
    PerChannel,
    /// Channel 0's curve is shared by all channels.
    Shared,
}

/// N delay circuits on one board, as in the paper's 4-channel unit.
///
/// # Examples
///
/// ```
/// use vardelay_core::{CalibrationStrategy, ModelConfig, MultiChannelDelay};
/// use vardelay_units::Time;
///
/// let mut unit = MultiChannelDelay::new(&ModelConfig::paper_prototype(), 4, 7);
/// unit.calibrate(CalibrationStrategy::PerChannel);
/// let settings = unit.set_delays(&[Time::ZERO; 4])?;
/// assert_eq!(settings.len(), 4);
/// # Ok::<(), vardelay_core::SetDelayError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MultiChannelDelay {
    channels: Vec<CombinedDelayCircuit>,
    strategy: Option<CalibrationStrategy>,
}

impl MultiChannelDelay {
    /// Builds `width` channel circuits with the default instance spread.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0` or the configuration is invalid.
    pub fn new(config: &ModelConfig, width: usize, seed: u64) -> Self {
        Self::with_spread(config, width, &InstanceSpread::default(), seed)
    }

    /// Builds `width` channels with explicit variation magnitudes.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0` or the configuration is invalid.
    pub fn with_spread(
        config: &ModelConfig,
        width: usize,
        spread: &InstanceSpread,
        seed: u64,
    ) -> Self {
        assert!(width > 0, "a unit needs at least one channel");
        config.validate();
        let mut rng = SplitMix64::new(seed);
        let channels = (0..width)
            .map(|i| {
                let mut cfg = config.clone();
                cfg.vga.core.prop_delay = (cfg.vga.core.prop_delay
                    + spread.prop_delay_sigma * rng.gaussian())
                .max(Time::ZERO);
                cfg.vga.core.slew_v_per_s *= 1.0 + spread.slew_rel_sigma * rng.gaussian();
                for dev in cfg.coarse_tap_deviations.iter_mut().skip(1) {
                    *dev += spread.tap_sigma * rng.gaussian();
                }
                CombinedDelayCircuit::new(&cfg, seed.wrapping_add(0x1000 + i as u64))
            })
            .collect();
        MultiChannelDelay {
            channels,
            strategy: None,
        }
    }

    /// Number of channels.
    pub fn width(&self) -> usize {
        self.channels.len()
    }

    /// The channels.
    pub fn channels(&self) -> &[CombinedDelayCircuit] {
        &self.channels
    }

    /// Mutable channel access.
    pub fn channels_mut(&mut self) -> &mut [CombinedDelayCircuit] {
        &mut self.channels
    }

    /// The active calibration strategy, if calibrated.
    pub fn strategy(&self) -> Option<CalibrationStrategy> {
        self.strategy
    }

    /// Calibrates the unit with the chosen strategy.
    pub fn calibrate(&mut self, strategy: CalibrationStrategy) {
        match strategy {
            CalibrationStrategy::PerChannel => {
                for ch in &mut self.channels {
                    ch.calibrate();
                }
            }
            CalibrationStrategy::Shared => {
                let table = self.channels[0].calibrate().clone();
                for ch in &mut self.channels[1..] {
                    ch.install_calibration(table.clone());
                }
            }
        }
        self.strategy = Some(strategy);
    }

    /// Programs one relative delay per channel.
    ///
    /// # Errors
    ///
    /// Returns the first channel's error if any target is out of range or
    /// the unit is uncalibrated.
    ///
    /// # Panics
    ///
    /// Panics if `targets.len()` differs from the channel count.
    pub fn set_delays(&mut self, targets: &[Time]) -> Result<Vec<DelaySetting>, SetDelayError> {
        assert_eq!(
            targets.len(),
            self.channels.len(),
            "one target per channel required"
        );
        self.channels
            .iter_mut()
            .zip(targets)
            .map(|(ch, &t)| ch.set_delay(t))
            .collect()
    }

    /// The guaranteed common range: the smallest per-channel total range.
    ///
    /// # Errors
    ///
    /// Returns [`SetDelayError::NotCalibrated`] before calibration.
    pub fn common_range(&self) -> Result<Time, SetDelayError> {
        let mut min = Time::from_s(f64::INFINITY);
        for ch in &self.channels {
            min = min.min(ch.total_range()?);
        }
        Ok(min)
    }

    /// Estimates the channel-to-channel setting accuracy: every channel is
    /// asked for the same target and the spread of *realized* delays
    /// (measured through each instance's waveform model at the chosen
    /// operating point) is returned peak-to-peak. With per-channel
    /// calibration this is DAC-quantization small; with a shared table it
    /// exposes the instance spread.
    ///
    /// # Errors
    ///
    /// Returns [`SetDelayError`] if the target is out of range or the
    /// unit is uncalibrated.
    pub fn setting_accuracy(&mut self, target: Time) -> Result<Time, SetDelayError> {
        let mut lo = Time::from_s(f64::INFINITY);
        let mut hi = Time::from_s(f64::NEG_INFINITY);
        for ch in &mut self.channels {
            let setting = ch.set_delay(target)?;
            // Realized fine delay on THIS instance at the chosen Vctrl,
            // plus this instance's actual tap delay.
            let fine = ch.fine().clone();
            let realized_fine = {
                let mut probe = fine;
                probe.set_vctrl(setting.vctrl);
                probe.measure_delay(Time::from_ps(320.0))
            };
            let zero_fine = {
                let mut probe = ch.fine().clone();
                probe.set_vctrl(Voltage::ZERO);
                probe.measure_delay(Time::from_ps(320.0))
            };
            let realized = ch.coarse().tap_delay(setting.tap) + (realized_fine - zero_fine);
            lo = lo.min(realized);
            hi = hi.max(realized);
        }
        Ok(hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(strategy: CalibrationStrategy) -> MultiChannelDelay {
        let mut u = MultiChannelDelay::new(&ModelConfig::paper_prototype().quiet(), 4, 99);
        u.calibrate(strategy);
        u
    }

    #[test]
    fn four_channels_all_program() {
        let mut u = unit(CalibrationStrategy::PerChannel);
        let settings = u
            .set_delays(&[
                Time::from_ps(10.0),
                Time::from_ps(45.0),
                Time::from_ps(80.0),
                Time::from_ps(115.0),
            ])
            .expect("targets within range");
        assert_eq!(settings.len(), 4);
        for s in &settings {
            assert!(s.predicted_error.abs() < Time::from_ps(1.0));
        }
    }

    #[test]
    fn common_range_still_meets_the_requirement() {
        let u = unit(CalibrationStrategy::PerChannel);
        let mut u = u;
        u.calibrate(CalibrationStrategy::PerChannel);
        assert!(u.common_range().expect("calibrated") > Time::from_ps(120.0));
    }

    #[test]
    fn per_channel_calibration_beats_shared() {
        let target = Time::from_ps(60.0);
        let per = unit(CalibrationStrategy::PerChannel)
            .setting_accuracy(target)
            .expect("in range");
        let shared = unit(CalibrationStrategy::Shared)
            .setting_accuracy(target)
            .expect("in range");
        assert!(
            per < shared,
            "per-channel {per} should beat shared {shared}"
        );
        // Per-channel calibration achieves the paper's <5 ps budget.
        assert!(per < Time::from_ps(5.0), "per-channel accuracy {per}");
    }

    #[test]
    fn uncalibrated_unit_reports() {
        let mut u = MultiChannelDelay::new(&ModelConfig::paper_prototype(), 2, 1);
        assert_eq!(u.strategy(), None);
        assert_eq!(
            u.set_delays(&[Time::ZERO, Time::ZERO]),
            Err(SetDelayError::NotCalibrated)
        );
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn zero_width_rejected() {
        let _ = MultiChannelDelay::new(&ModelConfig::paper_prototype(), 0, 1);
    }
}
