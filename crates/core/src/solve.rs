//! The calibration-solve fast path.
//!
//! Every [`crate::CombinedDelayCircuit::calibrate`] sweep probes the fine
//! line's delay at a grid of control voltages through the full waveform
//! simulation — and because each probe internally builds a fresh
//! noise-free, seed-0 line from the quiet configuration, the whole sweep
//! is a pure function of `(quiet-config fingerprint, interval, grid)`.
//! This module memoizes that function: a repeat solve for the same
//! fingerprint returns the cached [`CalibrationTable`] **byte-identical**
//! to what a re-simulation would have produced, skipping the entire
//! waveform sweep (EffiTest-style calibrated prediction instead of
//! exhaustive re-measurement).
//!
//! The slow path is kept as the authority: a cache miss runs the full
//! simulation, and a cached table that is not strictly increasing (flat
//! monotonized segments make the inversion ambiguous at the LSB level)
//! falls back to a fresh measurement rather than trusting the cache.
//!
//! Disable with `VARDELAY_FAST_SOLVE=0` (or override in-process with
//! [`set_fast_solve_enabled`]) to force every solve down the slow path —
//! the CI determinism job `cmp`s `repro all` CSVs with the flag on and
//! off to prove the paths byte-identical.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::calibration::CalibrationTable;
use vardelay_obs as obs;

/// One cache entry: a per-key single-flight slot, mirroring the
/// characterization cache in `vardelay-analog` — the first caller to
/// reach `get_or_init` measures; racing callers for the same key block
/// until the table exists instead of launching a duplicate sweep.
type SolveSlot = Arc<OnceLock<Arc<CalibrationTable>>>;

fn cache() -> &'static Mutex<HashMap<u64, SolveSlot>> {
    static CACHE: OnceLock<Mutex<HashMap<u64, SolveSlot>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

static SOLVE_HITS: AtomicU64 = AtomicU64::new(0);
static SOLVE_MISSES: AtomicU64 = AtomicU64::new(0);
static SOLVE_SINGLE_FLIGHT_WAITS: AtomicU64 = AtomicU64::new(0);
static SOLVE_FALLBACKS: AtomicU64 = AtomicU64::new(0);

/// 0 = undecided (consult the environment), 1 = on, 2 = off.
static FAST_SOLVE: AtomicU8 = AtomicU8::new(0);

/// Whether the fast path is active. Defaults to on; `VARDELAY_FAST_SOLVE`
/// set to `0`, `off` or `false` disables it (checked on first use), and
/// [`set_fast_solve_enabled`] overrides either way.
pub fn fast_solve_enabled() -> bool {
    match FAST_SOLVE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            let on = match std::env::var("VARDELAY_FAST_SOLVE") {
                Ok(v) => {
                    let v = v.trim().to_ascii_lowercase();
                    !(v == "0" || v == "off" || v == "false")
                }
                Err(_) => true,
            };
            FAST_SOLVE.store(if on { 1 } else { 2 }, Ordering::Relaxed);
            on
        }
    }
}

/// Forces the fast path on or off for this process, overriding the
/// environment — used by the equivalence tests to compare both paths in
/// one binary.
pub fn set_fast_solve_enabled(on: bool) {
    FAST_SOLVE.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

/// `(hits, misses)` counters of the process-wide solve cache. A miss is
/// counted once per *measurement*, not once per caller — racers that
/// waited on an in-flight solve count under
/// [`solve_single_flight_waits`] instead.
pub fn solve_cache_stats() -> (u64, u64) {
    (
        SOLVE_HITS.load(Ordering::Relaxed),
        SOLVE_MISSES.load(Ordering::Relaxed),
    )
}

/// How many solve lookups blocked on another thread's in-flight sweep of
/// the same key (and were spared a duplicate simulation).
pub fn solve_single_flight_waits() -> u64 {
    SOLVE_SINGLE_FLIGHT_WAITS.load(Ordering::Relaxed)
}

/// How many cached tables were rejected (not strictly increasing) and
/// re-measured through the slow path.
pub fn solve_fallbacks() -> u64 {
    SOLVE_FALLBACKS.load(Ordering::Relaxed)
}

/// Empties the solve cache (counters are left running). Meant for tests
/// and cold-start benchmarks. Threads already waiting on an in-flight
/// solve keep their slot and complete normally.
pub fn clear_solve_cache() {
    cache().lock().expect("solve cache lock").clear();
}

/// Returns the calibration table for `key`, measuring through `measure`
/// at most once per key. `key` must fingerprint everything the sweep
/// depends on (quiet model config, interval, grid voltages).
///
/// A cached table that is not strictly increasing is *not* served: flat
/// segments (produced by monotonizing a noisy measurement) make the
/// inversion degenerate, so such keys fall back to a fresh measurement
/// every time and are counted under [`solve_fallbacks`].
pub(crate) fn solve_table_cached(
    key: u64,
    measure: impl FnOnce() -> CalibrationTable,
) -> CalibrationTable {
    // The map lock is held only long enough to fetch/insert the per-key
    // slot; the sweep itself runs inside the slot's `OnceLock`, so misses
    // on different keys never serialize each other.
    let slot: SolveSlot = cache()
        .lock()
        .expect("solve cache lock")
        .entry(key)
        .or_default()
        .clone();
    if let Some(table) = slot.get() {
        if table.is_strictly_increasing() {
            SOLVE_HITS.fetch_add(1, Ordering::Relaxed);
            obs::counter("core.solve_fast_hits").incr();
            return CalibrationTable::clone(table);
        }
        // Non-monotone cached curve: don't trust the inversion, take the
        // slow path afresh for this caller.
        SOLVE_FALLBACKS.fetch_add(1, Ordering::Relaxed);
        obs::counter("core.solve_fallbacks").incr();
        return measure();
    }
    let mut measured_here = false;
    let mut measure = Some(measure);
    let table = slot.get_or_init(|| {
        measured_here = true;
        SOLVE_MISSES.fetch_add(1, Ordering::Relaxed);
        obs::counter("core.solve_fast_misses").incr();
        let _span = obs::span("core.solve_miss_us");
        Arc::new((measure.take().expect("init closure runs once"))())
    });
    if !measured_here {
        SOLVE_SINGLE_FLIGHT_WAITS.fetch_add(1, Ordering::Relaxed);
        obs::counter("core.solve_single_flight_waits").incr();
        if !table.is_strictly_increasing() {
            // Same policy as the hit path: never serve a degenerate curve.
            SOLVE_FALLBACKS.fetch_add(1, Ordering::Relaxed);
            obs::counter("core.solve_fallbacks").incr();
            return (measure.take().expect("not consumed by init"))();
        }
    }
    CalibrationTable::clone(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vardelay_units::{Time, Voltage};

    fn toy_table(slope_ps_per_v: f64) -> CalibrationTable {
        let grid: Vec<Voltage> = (0..5).map(|i| Voltage::from_v(i as f64 * 0.3)).collect();
        CalibrationTable::from_measurement(&grid, |v| {
            Time::from_ps(100.0 + slope_ps_per_v * v.as_v())
        })
    }

    #[test]
    fn repeat_keys_measure_once() {
        let key = 0x50fa_57e0_0000_0001;
        let calls = std::sync::atomic::AtomicU64::new(0);
        let run = || {
            solve_table_cached(key, || {
                calls.fetch_add(1, Ordering::Relaxed);
                toy_table(30.0)
            })
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert_eq!(calls.load(Ordering::Relaxed), 1, "second call must hit");
    }

    #[test]
    fn non_monotone_tables_fall_back_to_measurement() {
        let key = 0x50fa_57e0_0000_0002;
        // A flat curve: monotonization leaves equal neighbours, so the
        // cached inversion is degenerate and must not be served.
        let flat = solve_table_cached(key, || toy_table(0.0));
        assert!(!flat.is_strictly_increasing());
        let fallbacks_before = solve_fallbacks();
        let calls = std::sync::atomic::AtomicU64::new(0);
        let again = solve_table_cached(key, || {
            calls.fetch_add(1, Ordering::Relaxed);
            toy_table(0.0)
        });
        assert_eq!(again, flat);
        assert_eq!(calls.load(Ordering::Relaxed), 1, "fallback re-measures");
        assert!(solve_fallbacks() > fallbacks_before);
    }

    #[test]
    fn env_override_wins() {
        set_fast_solve_enabled(false);
        assert!(!fast_solve_enabled());
        set_fast_solve_enabled(true);
        assert!(fast_solve_enabled());
    }
}
