//! The paper's primary contribution: a picosecond-resolution variable
//! delay circuit for multi-gigahertz data signals, plus its jitter-injector
//! variant.
//!
//! Reproduces Keezer, Minier & Ducharme, *"Variable Delay of
//! Multi-Gigahertz Digital Signals for Deskew and Jitter-Injection Test
//! Applications"*, DATE 2008, behaviorally:
//!
//! * [`FineDelayLine`] — a cascade of variable-gain buffers sharing one
//!   control voltage, closed by a full-swing output stage. Sweeping
//!   `Vctrl` moves the propagation delay continuously by ~50 ps
//!   (paper §2, Figs. 3–7).
//! * [`CoarseDelaySection`] — 1:4 fanout, four controlled-length lines
//!   (0/33/66/99 ps designed) and a 4:1 mux (paper §3, Figs. 8–9).
//! * [`CombinedDelayCircuit`] — coarse + fine in cascade, ~140 ps total
//!   range, programmed through a 12-bit [`VctrlDac`] and a measured
//!   [`CalibrationTable`] (paper Fig. 10).
//! * [`JitterInjector`] — the §5 variant: AC-coupled voltage noise on
//!   `Vctrl` converts to timing jitter on the passed signal.
//! * [`selftest`] — built-in circuit self-test: DAC stuck/flaky-bit
//!   sweep and calibration-corruption checks feeding a [`CircuitHealth`]
//!   verdict (consumed by the fault-injection campaigns and the
//!   degraded-mode deskew loop).
//!
//! # Examples
//!
//! Program a combined circuit to a target delay:
//!
//! ```
//! use vardelay_core::{CombinedDelayCircuit, ModelConfig};
//! use vardelay_units::Time;
//!
//! let mut circuit = CombinedDelayCircuit::new(&ModelConfig::paper_prototype(), 1);
//! circuit.calibrate();
//! let setting = circuit.set_delay(Time::from_ps(75.0))?;
//! assert!(setting.predicted_error.abs() < Time::from_ps(2.0));
//! # Ok::<(), vardelay_core::SetDelayError>(())
//! ```

pub mod baseline;
pub mod calibration;
pub mod coarse;
pub mod combined;
pub mod config;
pub mod dac;
pub mod drift;
pub mod error;
pub mod fine;
pub mod injector;
pub mod multichannel;
pub mod selftest;
pub mod sentinel;
pub mod solve;

pub use baseline::PhaseInterpolator;
pub use calibration::{CalibrationError, CalibrationTable, ParseCalibrationError};
pub use coarse::CoarseDelaySection;
pub use combined::{CombinedDelayCircuit, DelaySetting};
pub use config::ModelConfig;
pub use dac::VctrlDac;
pub use drift::TempCo;
pub use error::SetDelayError;
pub use fine::FineDelayLine;
pub use injector::JitterInjector;
pub use multichannel::{CalibrationStrategy, InstanceSpread, MultiChannelDelay};
pub use selftest::{
    check_calibration, test_dac, CalibrationHealth, CircuitHealth, DacHealth, DacUnderTest,
    HealthVerdict,
};
pub use sentinel::{
    probe_indices, Sentinel, SentinelConfig, SentinelProbe, SentinelReport, SentinelVerdict,
};
pub use solve::{
    clear_solve_cache, fast_solve_enabled, set_fast_solve_enabled, solve_cache_stats,
    solve_fallbacks, solve_single_flight_waits,
};
