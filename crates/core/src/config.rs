//! Model configuration and the paper-tuned presets.
//!
//! All behavioral constants live here, in one place, so that every
//! experiment runs from the same model. The constants are tuned once
//! against two anchors from the paper — the Fig. 7 fine-delay range
//! (~56 ps over 1.5 V for 4 stages at low rate) and the Fig. 15 roll-off
//! (4-stage range ≈ 23.5 ps at a 6.4 GHz RZ clock; 2-stage ineffective
//! beyond ~6 GHz) — and then left untouched.

use vardelay_analog::{BufferCoreConfig, Fingerprint, VgaBufferConfig};
use vardelay_units::{Frequency, Time, Voltage};
use vardelay_waveform::RenderConfig;

fn push_core(fp: &mut Fingerprint, core: &BufferCoreConfig) {
    fp.push_f64(core.swing.as_v())
        .push_f64(core.v_lin.as_v())
        .push_f64(core.slew_v_per_s)
        .push_f64(core.bandwidth.as_hz())
        .push_f64(core.noise_rms.as_v())
        .push_f64(core.prop_delay.as_s())
        .push_f64(core.envelope_tau.as_s())
        .push_f64(core.envelope_floor.as_v());
}

/// Complete behavioral model of one delay-circuit channel.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelConfig {
    /// Parameters of each variable-gain fine stage.
    pub vga: VgaBufferConfig,
    /// Parameters of fixed-swing stages (output stage, fanout, mux).
    pub fixed: BufferCoreConfig,
    /// Number of cascaded variable-gain stages (paper: 4; early unit: 2).
    pub stages: usize,
    /// Designed coarse tap delays (paper: 0/33/66/99 ps).
    pub coarse_taps: [Time; 4],
    /// Static per-tap deviations of this physical instance (paper Fig. 9
    /// measures 0/33/70/95 ps, i.e. a few ps of manufacturing error).
    pub coarse_tap_deviations: [Time; 4],
    /// Per-edge RMS random jitter contributed by each active stage in the
    /// edge-domain model (the waveform model derives its jitter from
    /// `noise_rms` instead).
    pub stage_rj: Time,
    /// Rendering parameters used for waveform simulation and
    /// characterization.
    pub render: RenderConfig,
}

impl ModelConfig {
    /// The 4-stage prototype evaluated throughout the paper.
    pub fn paper_prototype() -> Self {
        let mut vga = VgaBufferConfig::paper_default();
        // Tuned: harder limiting keeps the input-slew dependence small so
        // the output-amplitude effect dominates, and a slightly slower slew
        // widens the per-stage range so the 4-stage cascade lands near the
        // measured ~56 ps.
        vga.core = BufferCoreConfig {
            swing: Voltage::from_mv(800.0),
            v_lin: Voltage::from_mv(35.0),
            slew_v_per_s: 0.024e12,
            bandwidth: Frequency::from_ghz(9.0),
            noise_rms: Voltage::from_mv(1.0),
            prop_delay: Time::from_ps(20.0),
            // The gain-envelope settling of the variable-gain stages is
            // what compresses the adjustment range at high toggle rates
            // (Fig. 15): a 115 ps envelope cannot re-develop the
            // programmed swing within a 78 ps half-period.
            envelope_tau: Time::from_ps(115.0),
            envelope_floor: Voltage::from_mv(40.0),
        };
        let fixed = BufferCoreConfig {
            swing: Voltage::from_mv(800.0),
            v_lin: Voltage::from_mv(35.0),
            slew_v_per_s: 0.033e12,
            bandwidth: Frequency::from_ghz(9.0),
            noise_rms: Voltage::from_mv(1.0),
            prop_delay: Time::from_ps(20.0),
            envelope_tau: Time::ZERO,
            envelope_floor: Voltage::from_mv(40.0),
        };
        ModelConfig {
            vga,
            fixed,
            stages: 4,
            coarse_taps: [
                Time::ZERO,
                Time::from_ps(33.0),
                Time::from_ps(66.0),
                Time::from_ps(99.0),
            ],
            // Fig. 9 of the paper measures 0 / 33 / 70 / 95 ps.
            coarse_tap_deviations: [
                Time::ZERO,
                Time::ZERO,
                Time::from_ps(4.0),
                Time::from_ps(-4.0),
            ],
            stage_rj: Time::from_ps(0.35),
            render: {
                // Pad the capture well past the ~250 ps total chain delay
                // so the final transitions stay inside the window.
                let mut render = RenderConfig::default_source();
                render.padding = Time::from_ps(500.0);
                render
            },
        }
    }

    /// The earlier 2-stage unit used as the comparison curve in Fig. 15.
    pub fn early_two_stage() -> Self {
        let mut cfg = Self::paper_prototype();
        cfg.stages = 2;
        // The early build used a faster-slewing but much slower-settling
        // variable-gain part: smaller per-stage range (~10 ps) and a gain
        // envelope that cannot follow beyond a few GHz — which is why its
        // usable range collapses past ~6 GHz in Fig. 15.
        cfg.vga.core.slew_v_per_s = 0.033e12;
        cfg.vga.core.envelope_tau = Time::from_ps(500.0);
        cfg.fixed.bandwidth = Frequency::from_ghz(6.0);
        cfg
    }

    /// A copy with all voltage-noise sources disabled, for clean mean-delay
    /// measurements (characterization, calibration).
    pub fn quiet(&self) -> Self {
        let mut cfg = self.clone();
        cfg.vga.core.noise_rms = Voltage::ZERO;
        cfg.fixed.noise_rms = Voltage::ZERO;
        cfg.stage_rj = Time::ZERO;
        cfg
    }

    /// Total number of active components in the combined circuit: fine
    /// stages + output stage + fanout + mux. The paper counts 7 for the
    /// 4-stage prototype and worries about jitter accumulating across them.
    pub fn active_components(&self) -> usize {
        self.stages + 3
    }

    /// Aggregate edge-domain RJ of a chain of `n` active stages
    /// (independent Gaussian contributions add in quadrature).
    pub fn chain_rj(&self, n: usize) -> Time {
        self.stage_rj * (n as f64).sqrt()
    }

    /// A 64-bit structural fingerprint of every field that can influence a
    /// measurement of this model — the characterization-cache key (see
    /// DESIGN.md §8). Two configurations share a fingerprint only when all
    /// parameters are bit-identical, so a cached [`DelayTable`] keyed on it
    /// is exact, never approximate.
    ///
    /// [`DelayTable`]: vardelay_analog::DelayTable
    pub fn fingerprint(&self) -> u64 {
        let mut fp = Fingerprint::new();
        push_core(&mut fp, &self.vga.core);
        fp.push_f64(self.vga.amp_min.as_v())
            .push_f64(self.vga.amp_max.as_v())
            .push_f64(self.vga.vctrl_min.as_v())
            .push_f64(self.vga.vctrl_max.as_v())
            .push_f64(self.vga.control_sharpness);
        push_core(&mut fp, &self.fixed);
        fp.push_usize(self.stages);
        for t in &self.coarse_taps {
            fp.push_f64(t.as_s());
        }
        for t in &self.coarse_tap_deviations {
            fp.push_f64(t.as_s());
        }
        fp.push_f64(self.stage_rj.as_s());
        fp.push_f64(self.render.dt.as_s())
            .push_f64(self.render.swing.as_v())
            .push_f64(self.render.rise_time.as_s())
            .push_f64(self.render.padding.as_s());
        fp.finish()
    }

    /// Validates all nested configuration.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is out of range or `stages == 0`.
    pub fn validate(&self) {
        assert!(self.stages > 0, "at least one fine stage required");
        self.vga.validate();
        self.fixed.validate();
        assert!(self.stage_rj >= Time::ZERO, "stage RJ must be non-negative");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        ModelConfig::paper_prototype().validate();
        ModelConfig::early_two_stage().validate();
    }

    #[test]
    fn prototype_counts_seven_active_components() {
        assert_eq!(ModelConfig::paper_prototype().active_components(), 7);
        assert_eq!(ModelConfig::early_two_stage().active_components(), 5);
    }

    #[test]
    fn quiet_removes_all_noise() {
        let q = ModelConfig::paper_prototype().quiet();
        assert_eq!(q.vga.core.noise_rms, Voltage::ZERO);
        assert_eq!(q.fixed.noise_rms, Voltage::ZERO);
        assert_eq!(q.stage_rj, Time::ZERO);
    }

    #[test]
    fn chain_rj_adds_in_quadrature() {
        let cfg = ModelConfig::paper_prototype();
        let one = cfg.chain_rj(1);
        let four = cfg.chain_rj(4);
        assert!((four / one - 2.0).abs() < 1e-12);
    }

    #[test]
    fn fingerprint_tracks_every_measurement_parameter() {
        let base = ModelConfig::paper_prototype();
        assert_eq!(
            base.fingerprint(),
            ModelConfig::paper_prototype().fingerprint()
        );
        assert_ne!(
            base.fingerprint(),
            ModelConfig::early_two_stage().fingerprint()
        );
        // quiet() changes noise fields → must invalidate the cache key.
        assert_ne!(base.fingerprint(), base.quiet().fingerprint());
        let mut render_tweak = base.clone();
        render_tweak.render.padding = Time::from_ps(501.0);
        assert_ne!(base.fingerprint(), render_tweak.fingerprint());
        let mut tap_tweak = base.clone();
        tap_tweak.coarse_tap_deviations[3] = Time::from_ps(-3.0);
        assert_ne!(base.fingerprint(), tap_tweak.fingerprint());
    }

    #[test]
    fn coarse_taps_step_by_33ps() {
        let cfg = ModelConfig::paper_prototype();
        for i in 1..4 {
            let step = cfg.coarse_taps[i] - cfg.coarse_taps[i - 1];
            assert!((step.as_ps() - 33.0).abs() < 1e-9);
        }
    }
}
