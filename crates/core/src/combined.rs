//! The combined coarse + fine delay circuit (paper §3–4, Fig. 10).

use crate::calibration::CalibrationTable;
use crate::coarse::CoarseDelaySection;
use crate::config::ModelConfig;
use crate::dac::VctrlDac;
use crate::error::SetDelayError;
use crate::fine::FineDelayLine;
use vardelay_analog::{AnalogBlock, Fingerprint};
use vardelay_runner::Runner;
use vardelay_units::{Time, Voltage};
use vardelay_waveform::Waveform;

/// The programmed operating point chosen by [`CombinedDelayCircuit::set_delay`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelaySetting {
    /// Selected coarse tap (0..4).
    pub tap: usize,
    /// Programmed DAC code.
    pub dac_code: u32,
    /// The control voltage produced by that code.
    pub vctrl: Voltage,
    /// The relative delay the calibration predicts for this setting.
    pub predicted_delay: Time,
    /// `predicted_delay − requested` (dominated by DAC quantization).
    pub predicted_error: Time,
}

/// The full prototype channel: coarse section cascaded with the fine line,
/// programmed through a DAC against a measured calibration.
///
/// Delays are *relative*: `set_delay(Time::ZERO)` selects tap 0 at the
/// fine line's minimum-delay control voltage; the fixed through-delay of
/// the seven active stages is common mode and irrelevant for deskew.
#[derive(Debug, Clone)]
pub struct CombinedDelayCircuit {
    coarse: CoarseDelaySection,
    fine: FineDelayLine,
    dac: VctrlDac,
    calibration: Option<CalibrationTable>,
    config: ModelConfig,
}

impl CombinedDelayCircuit {
    /// Builds an uncalibrated circuit. Run
    /// [`calibrate`](Self::calibrate) before programming delays.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: &ModelConfig, seed: u64) -> Self {
        config.validate();
        CombinedDelayCircuit {
            coarse: CoarseDelaySection::new(config, seed.wrapping_add(0xc0)),
            fine: FineDelayLine::new(config, seed.wrapping_add(0xf1)),
            dac: VctrlDac::new(12, config.vga.vctrl_min, config.vga.vctrl_max),
            calibration: None,
            config: config.clone(),
        }
    }

    /// The coarse section.
    pub fn coarse(&self) -> &CoarseDelaySection {
        &self.coarse
    }

    /// The fine line.
    pub fn fine(&self) -> &FineDelayLine {
        &self.fine
    }

    /// The control DAC.
    pub fn dac(&self) -> &VctrlDac {
        &self.dac
    }

    /// The calibration table, if [`calibrate`](Self::calibrate) has run.
    pub fn calibration(&self) -> Option<&CalibrationTable> {
        self.calibration.as_ref()
    }

    /// Measures the fine delay-vs-`Vctrl` curve at a representative toggle
    /// interval (320 ps ≈ 3.1 Gb/s clock pattern) over 17 control points
    /// and stores the table — the paper's Fig. 7 procedure.
    pub fn calibrate(&mut self) -> &CalibrationTable {
        self.calibrate_at(Time::from_ps(320.0), 17)
    }

    /// [`CombinedDelayCircuit::calibrate`] on an explicit [`Runner`].
    pub fn calibrate_with(&mut self, runner: Runner) -> &CalibrationTable {
        self.calibrate_at_with(runner, Time::from_ps(320.0), 17)
    }

    /// Installs an externally measured calibration table — used by
    /// multi-channel units sharing one channel's curve, and by hosts that
    /// persist calibrations across sessions.
    pub fn install_calibration(&mut self, table: CalibrationTable) {
        self.calibration = Some(table);
    }

    /// [`CombinedDelayCircuit::calibrate`] through the characterization
    /// cache: the fine line's delay table is measured **once per model
    /// fingerprint** (`measure_delay_table_cached` in `vardelay-analog`,
    /// single-flight across racing callers) and every later calibration
    /// — another channel of a multi-tenant unit, another server start in
    /// the same process — rebuilds its [`CalibrationTable`] from the
    /// cached curve without re-running the waveform sweep. This is the
    /// solve path `vardelay-serve` programs channels through.
    ///
    /// The curve is measured by the characterization engine rather than
    /// [`calibrate`](Self::calibrate)'s direct per-point sweep, so the
    /// two tables can differ by the engines' (sub-picosecond) tail
    ///-pairing differences; both are valid calibrations of the same
    /// line.
    pub fn calibrate_cached(&mut self) -> &CalibrationTable {
        self.calibrate_cached_with(Runner::global())
    }

    /// [`CombinedDelayCircuit::calibrate_cached`] on an explicit
    /// [`Runner`].
    pub fn calibrate_cached_with(&mut self, runner: Runner) -> &CalibrationTable {
        let interval = Time::from_ps(320.0);
        let points = 17;
        let grid: Vec<Voltage> = (0..points)
            .map(|i| {
                self.fine
                    .vctrl_min()
                    .lerp(self.fine.vctrl_max(), i as f64 / (points - 1) as f64)
            })
            .collect();
        let table = self.fine.characterize_with(runner, &grid, &[interval]);
        let mut curve = table.curve_at(interval).into_iter();
        let cal = CalibrationTable::from_measurement(&grid, |_| {
            curve.next().expect("one curve point per grid voltage").1
        });
        self.calibration = Some(cal);
        self.calibration.as_ref().expect("just stored")
    }

    /// Calibrates at a caller-chosen toggle interval and grid size.
    ///
    /// # Panics
    ///
    /// Panics if `points < 2`.
    pub fn calibrate_at(&mut self, interval: Time, points: usize) -> &CalibrationTable {
        self.calibrate_at_with(Runner::global(), interval, points)
    }

    /// [`CombinedDelayCircuit::calibrate_at`] on an explicit [`Runner`].
    /// Grid points are measured in parallel — each probes a fresh clone of
    /// the fine line, so the table is bit-identical to the serial sweep at
    /// every thread count.
    ///
    /// Each probe internally measures a fresh noise-free seed-0 line built
    /// from the quiet configuration, so the whole sweep is a pure function
    /// of `(quiet fingerprint, interval, grid)` — which is exactly the key
    /// the solve cache (`crate::solve`) memoizes it under. A repeat
    /// calibration of an identical channel skips the waveform simulation
    /// entirely and returns the byte-identical table; set
    /// `VARDELAY_FAST_SOLVE=0` to force every solve through the full
    /// sweep.
    ///
    /// # Panics
    ///
    /// Panics if `points < 2`.
    pub fn calibrate_at_with(
        &mut self,
        runner: Runner,
        interval: Time,
        points: usize,
    ) -> &CalibrationTable {
        assert!(points >= 2, "calibration needs at least two points");
        let _solve = vardelay_obs::span("core.solve_us");
        let grid: Vec<Voltage> = (0..points)
            .map(|i| {
                self.fine
                    .vctrl_min()
                    .lerp(self.fine.vctrl_max(), i as f64 / (points - 1) as f64)
            })
            .collect();
        let table = if crate::solve::fast_solve_enabled() {
            let mut fp = Fingerprint::new();
            fp.push_u64(self.config.quiet().fingerprint());
            fp.push_f64(interval.as_s());
            fp.push_usize(points);
            for v in &grid {
                fp.push_f64(v.as_v());
            }
            crate::solve::solve_table_cached(fp.finish(), || {
                self.sweep_calibration(runner, &grid, interval)
            })
        } else {
            self.sweep_calibration(runner, &grid, interval)
        };
        self.calibration = Some(table);
        self.calibration.as_ref().expect("just stored")
    }

    /// The slow-path calibration sweep: one full waveform simulation per
    /// grid point, fanned out on `runner`. This is the authority the fast
    /// path's cache is filled from.
    fn sweep_calibration(
        &self,
        runner: Runner,
        grid: &[Voltage],
        interval: Time,
    ) -> CalibrationTable {
        let fine = self.fine.clone();
        let delays = runner.par_map(grid, |_, &v| {
            let mut probe = fine.clone();
            probe.set_vctrl(v);
            probe.measure_delay(interval)
        });
        let mut next = delays.into_iter();
        CalibrationTable::from_measurement(grid, |_| {
            next.next().expect("one measured delay per grid point")
        })
    }

    /// The total programmable relative range: last coarse tap plus the
    /// calibrated fine range — about 140 ps for the prototype, satisfying
    /// the ≥120 ps application requirement.
    ///
    /// # Errors
    ///
    /// Returns [`SetDelayError::NotCalibrated`] before calibration.
    pub fn total_range(&self) -> Result<Time, SetDelayError> {
        let cal = self
            .calibration
            .as_ref()
            .ok_or(SetDelayError::NotCalibrated)?;
        Ok(self.coarse.max_tap_delay() + cal.range())
    }

    /// Programs the circuit to `target` relative delay: picks the highest
    /// coarse tap not exceeding the target, then solves the fine control
    /// voltage for the residue and rounds it to the nearest DAC code.
    ///
    /// # Errors
    ///
    /// Returns [`SetDelayError::NotCalibrated`] before calibration, or
    /// [`SetDelayError::OutOfRange`] if `target` exceeds the combined
    /// range.
    pub fn set_delay(&mut self, target: Time) -> Result<DelaySetting, SetDelayError> {
        let cal = self
            .calibration
            .as_ref()
            .ok_or(SetDelayError::NotCalibrated)?;
        let fine_range = cal.range();
        let max = self.coarse.max_tap_delay() + fine_range;
        if target < Time::ZERO || target > max {
            return Err(SetDelayError::OutOfRange {
                requested: target,
                min: Time::ZERO,
                max,
            });
        }
        // Highest tap whose residue fits the fine range. Taps ascend, so
        // scan from the top; tap 0 always fits because target >= 0. The
        // femtosecond slack absorbs floating-point rounding at the exact
        // range boundary.
        let eps = Time::from_fs(10.0);
        let taps = self.coarse.tap_delays();
        let tap = (0..4)
            .rev()
            .find(|&k| {
                let residue = target - taps[k];
                residue >= -eps && residue <= fine_range + eps
            })
            .ok_or(SetDelayError::OutOfRange {
                requested: target,
                min: Time::ZERO,
                max,
            })?;
        let residue = (target - taps[tap]).clamp(Time::ZERO, fine_range);
        let fine_target = cal.min_delay() + residue;
        let vctrl_exact = cal
            .vctrl_for_delay(fine_target)
            .expect("residue is within the fine range by construction");
        let dac_code = self.dac.code_for(vctrl_exact);
        let vctrl = self.dac.voltage(dac_code);
        let predicted_delay = taps[tap] + (cal.delay_at(vctrl) - cal.min_delay());

        self.coarse.select_tap(tap).expect("tap index in range");
        self.fine.set_vctrl(vctrl);
        Ok(DelaySetting {
            tap,
            dac_code,
            vctrl,
            predicted_delay,
            predicted_error: predicted_delay - target,
        })
    }

    /// The worst-case gap between adjacent programmable delays: with the
    /// fine range exceeding every coarse step, coverage is continuous and
    /// the step is set by the DAC (sub-picosecond).
    ///
    /// # Errors
    ///
    /// Returns [`SetDelayError::NotCalibrated`] before calibration.
    pub fn setting_resolution(&self) -> Result<Time, SetDelayError> {
        let cal = self
            .calibration
            .as_ref()
            .ok_or(SetDelayError::NotCalibrated)?;
        Ok(self.dac.delay_resolution(cal.mean_slope_s_per_v()))
    }

    /// The model configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }
}

impl AnalogBlock for CombinedDelayCircuit {
    fn process(&mut self, input: &Waveform) -> Waveform {
        let after_coarse = self.coarse.process(input);
        let out = self.fine.process(&after_coarse);
        vardelay_waveform::pool::recycle(after_coarse.into_samples());
        out
    }

    fn name(&self) -> &str {
        "combined-delay"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vardelay_siggen::{BitPattern, EdgeStream};
    use vardelay_units::BitRate;
    use vardelay_waveform::to_edge_stream;

    fn calibrated() -> CombinedDelayCircuit {
        let mut c = CombinedDelayCircuit::new(&ModelConfig::paper_prototype().quiet(), 1);
        c.calibrate();
        c
    }

    #[test]
    fn uncalibrated_is_an_error() {
        let mut c = CombinedDelayCircuit::new(&ModelConfig::paper_prototype(), 1);
        assert_eq!(
            c.set_delay(Time::from_ps(10.0)),
            Err(SetDelayError::NotCalibrated)
        );
        assert_eq!(c.total_range(), Err(SetDelayError::NotCalibrated));
    }

    #[test]
    fn total_range_meets_the_120ps_requirement() {
        let c = calibrated();
        let range = c.total_range().unwrap();
        assert!(range > Time::from_ps(120.0), "combined range only {range}");
        assert!(range < Time::from_ps(180.0), "implausibly large {range}");
    }

    #[test]
    fn out_of_range_is_reported() {
        let mut c = calibrated();
        let max = c.total_range().unwrap();
        let err = c.set_delay(max + Time::from_ps(1.0)).unwrap_err();
        match err {
            SetDelayError::OutOfRange { requested, .. } => {
                assert!((requested - max - Time::from_ps(1.0)).abs() < Time::from_fs(1.0));
            }
            other => panic!("unexpected error {other:?}"),
        }
        assert!(c.set_delay(Time::from_ps(-5.0)).is_err());
    }

    #[test]
    fn settings_cover_the_range_with_small_predicted_error() {
        let mut c = calibrated();
        let max = c.total_range().unwrap();
        for i in 0..=20 {
            let target = max * (i as f64 / 20.0);
            let setting = c.set_delay(target).unwrap();
            assert!(
                setting.predicted_error.abs() < Time::from_ps(1.0),
                "target {target}: error {}",
                setting.predicted_error
            );
        }
    }

    #[test]
    fn programmed_delay_is_realized_in_simulation() {
        let mut c = calibrated();
        let rate = BitRate::from_bps(1.0 / 320e-12);
        let stream = EdgeStream::nrz(&BitPattern::clock(24), rate);
        let wf = Waveform::render(&stream, &c.config().render);

        // Reference: zero relative delay.
        c.set_delay(Time::ZERO).unwrap();
        let base = to_edge_stream(&c.process(&wf), 0.0, rate.bit_period());

        for target_ps in [20.0, 75.0, 130.0] {
            let target = Time::from_ps(target_ps);
            c.set_delay(target).unwrap();
            let out = to_edge_stream(&c.process(&wf), 0.0, rate.bit_period());
            let d = vardelay_measure::tail_mean_delay(&base, &out, 8).unwrap();
            assert!(
                (d - target).abs() < Time::from_ps(2.5),
                "target {target}, realized {d}"
            );
        }
    }

    #[test]
    fn cached_calibration_matches_the_direct_sweep() {
        let cfg = ModelConfig::paper_prototype().quiet();
        let mut direct = CombinedDelayCircuit::new(&cfg, 1);
        direct.calibrate();
        let mut cached = CombinedDelayCircuit::new(&cfg, 1);
        cached.calibrate_cached();
        // Different measurement engines, same physical curve: ranges
        // agree to a couple of picoseconds and programming works across
        // the full span.
        let dr = direct.calibration().unwrap().range();
        let cr = cached.calibration().unwrap().range();
        assert!(
            (dr - cr).abs() < Time::from_ps(3.0),
            "direct {dr} vs cached {cr}"
        );
        let max = cached.total_range().unwrap();
        for i in 0..=10 {
            let target = max * (i as f64 / 10.0);
            let s = cached.set_delay(target).unwrap();
            assert!(
                s.predicted_error.abs() < Time::from_ps(1.0),
                "target {target}: error {}",
                s.predicted_error
            );
        }
        // A second cached calibration reproduces the identical table
        // (served from the characterization cache, not re-measured).
        let first = cached.calibration().unwrap().clone();
        let mut again = CombinedDelayCircuit::new(&cfg, 99);
        again.calibrate_cached();
        assert_eq!(again.calibration(), Some(&first));
    }

    #[test]
    fn resolution_is_sub_picosecond() {
        let c = calibrated();
        let res = c.setting_resolution().unwrap();
        assert!(res < Time::from_ps(0.1), "resolution {res}");
    }

    #[test]
    fn higher_targets_use_higher_taps() {
        let mut c = calibrated();
        let low = c.set_delay(Time::from_ps(5.0)).unwrap();
        let high = c.set_delay(Time::from_ps(120.0)).unwrap();
        assert!(low.tap < high.tap);
        assert_eq!(high.tap, 3);
    }
}
