//! The baseline the paper argues against: clock-domain phase adjustment.
//!
//! "Since it is generally easier to adjust a constant-frequency
//! (narrow-bandwidth) clock signal, rather than the wide-bandwidth data
//! signal, the solution usually involves adjusting the clock phase. Many
//! VCO and PLL or DLL techniques are widely used for this purpose.
//! However, the more general (and more difficult) problem of aligning
//! multiple data signals is not so easily solved" (paper §1).
//!
//! [`PhaseInterpolator`] implements that standard technique: it mixes two
//! quadrature copies of the input, which rotates the phase of a
//! *sinusoid-like* signal cleanly through a full period. Applied to a
//! constant-frequency clock it is an excellent delay element; applied to
//! wideband NRZ data it destroys the eye — the quantitative version of
//! the paper's motivation, used as the baseline in the B1 experiment.

use vardelay_units::{Frequency, Time};
use vardelay_waveform::{OnePole, Waveform};

/// A quadrature phase interpolator tuned to a design frequency.
///
/// The block band-limits the input around `f0` (the narrowband assumption
/// every clock-phase shifter makes), builds a 90°-shifted copy, and mixes
/// `cos(φ)·I + sin(φ)·Q` to realize a delay of `φ/(2π·f0)`.
///
/// # Examples
///
/// ```
/// use vardelay_core::baseline::PhaseInterpolator;
/// use vardelay_units::{Frequency, Time};
///
/// let mut pi = PhaseInterpolator::new(Frequency::from_ghz(3.2));
/// pi.set_delay(Time::from_ps(40.0));
/// assert!((pi.delay().as_ps() - 40.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseInterpolator {
    f0: Frequency,
    delay: Time,
    /// Band-limiting filter approximating the interpolator's narrowband
    /// internal nodes.
    band_limit: OnePole,
}

impl PhaseInterpolator {
    /// Creates an interpolator designed for signals at `f0`, with its
    /// internal band-limit at `1.2·f0`.
    ///
    /// # Panics
    ///
    /// Panics if `f0` is not positive.
    pub fn new(f0: Frequency) -> Self {
        assert!(f0 > Frequency::ZERO, "design frequency must be positive");
        PhaseInterpolator {
            f0,
            delay: Time::ZERO,
            band_limit: OnePole::with_corner(f0 * 1.2),
        }
    }

    /// The design frequency.
    pub fn design_frequency(&self) -> Frequency {
        self.f0
    }

    /// Programs the target delay (any value; phase wraps modulo `1/f0`).
    pub fn set_delay(&mut self, delay: Time) {
        self.delay = delay;
    }

    /// The programmed delay.
    pub fn delay(&self) -> Time {
        self.delay
    }

    /// Processes a waveform: band-limit, synthesize the quadrature copy by
    /// differentiation (exact 90° for the design tone), and mix.
    ///
    /// For a clock at `f0` this rotates the phase cleanly; for wideband
    /// data every spectral component gets the *same phase shift* instead
    /// of the same time shift, which smears the waveform.
    pub fn process(&self, input: &Waveform) -> Waveform {
        let mut band = input.clone();
        self.band_limit.apply(&mut band);

        let phi = 2.0 * core::f64::consts::PI * self.f0.as_hz() * self.delay.as_s();
        let (cos_phi, sin_phi) = (phi.cos(), phi.sin());

        // Quadrature copy: Q = -dI/dt / (2π f0) is exactly 90° behind the
        // design tone (and wrong for every other frequency — the flaw that
        // makes this a clock-only technique).
        let dt = band.dt().as_s();
        let scale = 1.0 / (2.0 * core::f64::consts::PI * self.f0.as_hz());
        let samples = band.samples();
        let mut out = Vec::with_capacity(samples.len());
        for i in 0..samples.len() {
            let derivative = if i == 0 {
                0.0
            } else {
                (samples[i] - samples[i - 1]) / dt
            };
            let q = -derivative * scale;
            out.push(cos_phi * samples[i] + sin_phi * q);
        }
        Waveform::new(band.t0(), band.dt(), out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vardelay_measure::{eye_metrics, tail_mean_delay};
    use vardelay_siggen::{BitPattern, EdgeStream};
    use vardelay_units::BitRate;
    use vardelay_waveform::{to_edge_stream, EyeDiagram, RenderConfig};

    fn clock_wave(rate: BitRate, bits: usize) -> (EdgeStream, Waveform) {
        let stream = EdgeStream::nrz(&BitPattern::clock(bits), rate);
        let wf = Waveform::render(&stream, &RenderConfig::default_source());
        (stream, wf)
    }

    #[test]
    fn delays_a_clock_cleanly() {
        // A 3.2 Gb/s 1010 pattern is a 1.6 GHz tone: the interpolator's
        // home turf.
        let rate = BitRate::from_gbps(3.2);
        let (stream, wf) = clock_wave(rate, 64);
        let mut pi = PhaseInterpolator::new(rate.fundamental());
        for target_ps in [10.0, 40.0, 100.0] {
            pi.set_delay(Time::from_ps(target_ps));
            let out = pi.process(&wf);
            let out_stream = to_edge_stream(&out, 0.0, rate.bit_period());
            let d = tail_mean_delay(&stream, &out_stream, 8).expect("edges align");
            // Remove the band-limit filter's own group delay by comparing
            // against the zero-setting baseline.
            pi.set_delay(Time::ZERO);
            let base = to_edge_stream(&pi.process(&wf), 0.0, rate.bit_period());
            let base_d = tail_mean_delay(&stream, &base, 8).expect("edges align");
            let realized = (d - base_d).as_ps();
            // The clock content is a band-limited square, not a pure
            // tone, so residual harmonics skew the rotation a little;
            // within ~20 % is what a behavioral rotator delivers.
            assert!(
                (realized - target_ps).abs() < 0.2 * target_ps + 2.0,
                "target {target_ps}, realized {realized}"
            );
            pi.set_delay(Time::from_ps(target_ps));
        }
    }

    #[test]
    fn destroys_a_data_eye() {
        // The paper's point: the same technique applied to wideband NRZ
        // data wrecks the eye. A phase shift gives every spectral
        // component the same *angle* instead of the same *time*: the DC
        // content of long runs scales by cos(φ), so at φ ≈ 81°
        // (a 70 ps target at 6.4 Gb/s) the vertical eye collapses, and
        // the run-length-dependent crossing shifts add deterministic
        // jitter. The vardelay circuit keeps the same eye open.
        let rate = BitRate::from_gbps(6.4);
        let stream = EdgeStream::nrz(&BitPattern::prbs7(1, 300), rate);
        let wf = Waveform::render(&stream, &RenderConfig::default_source());
        let mut pi = PhaseInterpolator::new(rate.fundamental());
        pi.set_delay(Time::from_ps(70.0));
        let out = pi.process(&wf);

        let mut eye_in = EyeDiagram::new(rate.bit_period(), 96, 48, 0.5);
        eye_in.add_waveform(&wf);
        let mut eye_out = EyeDiagram::new(rate.bit_period(), 96, 48, 0.5);
        eye_out.add_waveform(&out);

        let m_in = eye_metrics(&eye_in).expect("open input eye");
        let m_out = eye_metrics(&eye_out).expect("edges exist");
        // Vertical collapse: cos(81°) ≈ 0.16 of the DC levels survive.
        assert!(
            m_out.height < m_in.height * 0.6,
            "height in {} out {}",
            m_in.height,
            m_out.height
        );
        // Horizontal damage: data-dependent crossing spread appears (the
        // dominant failure in this behavioral model is vertical, but the
        // run-length-dependent shifts are visible too).
        assert!(
            m_out.crossing_peak_to_peak > m_in.crossing_peak_to_peak + Time::from_ps(0.5),
            "pp in {} out {}",
            m_in.crossing_peak_to_peak,
            m_out.crossing_peak_to_peak
        );
    }

    #[test]
    fn zero_delay_is_nearly_transparent_in_band() {
        let rate = BitRate::from_gbps(3.2);
        let (_, wf) = clock_wave(rate, 32);
        let pi = PhaseInterpolator::new(rate.fundamental());
        let out = pi.process(&wf);
        // cos(0)=1, sin(0)=0: output is just the band-limited input.
        assert_eq!(out.len(), wf.len());
        assert!(out.peak() > wf.peak() * 0.5);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_frequency_rejected() {
        let _ = PhaseInterpolator::new(Frequency::ZERO);
    }
}
