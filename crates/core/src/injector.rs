//! Jitter injection: converting voltage noise on `Vctrl` into timing
//! jitter (paper §5, Figs. 16–17).
//!
//! "This is accomplished by AC-coupling a voltage noise source to the
//! Vctrl signal which determines the fine delay adjustment. If this
//! voltage changes, then the delay also changes."

use crate::config::ModelConfig;
use crate::fine::FineDelayLine;
use vardelay_analog::{CharacterizedDelay, OuNoise};
use vardelay_siggen::EdgeStream;
use vardelay_units::{Frequency, Time, Voltage};

/// The jitter-injection variant of the fine delay line: band-limited
/// Gaussian noise AC-coupled onto the common `Vctrl`.
///
/// The injector runs on the edge engine: the fine line is characterized
/// once into a `delay(Vctrl, interval)` table, and every passing edge
/// samples the noise process to pick its instantaneous control voltage.
///
/// # Examples
///
/// ```
/// use vardelay_core::{JitterInjector, ModelConfig};
/// use vardelay_siggen::{BitPattern, EdgeStream};
/// use vardelay_units::{BitRate, Time, Voltage};
///
/// let mut injector = JitterInjector::new(&ModelConfig::paper_prototype(), 9);
/// injector.set_noise_peak_to_peak(Voltage::from_mv(900.0));
/// let stream = EdgeStream::nrz(&BitPattern::prbs7(1, 254), BitRate::from_gbps(3.2));
/// let jittered = injector.inject(&stream);
/// assert_eq!(jittered.len(), stream.len());
/// ```
#[derive(Debug)]
pub struct JitterInjector {
    model: CharacterizedDelay,
    noise: OuNoise,
    bias: Voltage,
    last_edge: Option<Time>,
    config: ModelConfig,
    seed: u64,
}

impl JitterInjector {
    /// Default bandwidth assumed for the external noise generator.
    pub const DEFAULT_NOISE_BANDWIDTH: Frequency = Frequency::from_mhz(500.0);

    /// Builds an injector around the configured fine line, biased at the
    /// middle of the control range (maximum delay slope), with the noise
    /// source initially silent.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: &ModelConfig, seed: u64) -> Self {
        config.validate();
        let line = FineDelayLine::new(config, seed);
        let (vctrls, intervals) = line.default_grids();
        let model = line.edge_model(&vctrls, &intervals, seed.wrapping_add(0x1e));
        let bias = config.vga.vctrl_min.lerp(config.vga.vctrl_max, 0.5);
        JitterInjector {
            model,
            noise: OuNoise::new(
                Voltage::ZERO,
                Self::DEFAULT_NOISE_BANDWIDTH,
                seed.wrapping_add(0x2f),
            ),
            bias,
            last_edge: None,
            config: config.clone(),
            seed,
        }
    }

    /// The static `Vctrl` operating point the noise rides on.
    pub fn bias(&self) -> Voltage {
        self.bias
    }

    /// Moves the operating point (clamped into the control range).
    pub fn set_bias(&mut self, bias: Voltage) {
        self.bias = bias.clamp(self.config.vga.vctrl_min, self.config.vga.vctrl_max);
    }

    /// Programs the noise generator by its peak-to-peak rating
    /// (`Vpp = 6·σ`), keeping the default bandwidth.
    pub fn set_noise_peak_to_peak(&mut self, vpp: Voltage) {
        self.noise = OuNoise::from_peak_to_peak(
            vpp,
            Self::DEFAULT_NOISE_BANDWIDTH,
            self.seed.wrapping_add(0x2f),
        );
        self.last_edge = None;
    }

    /// Programs the noise generator explicitly.
    pub fn set_noise(&mut self, sigma: Voltage, bandwidth: Frequency) {
        self.noise = OuNoise::new(sigma, bandwidth, self.seed.wrapping_add(0x2f));
        self.last_edge = None;
    }

    /// Current noise RMS.
    pub fn noise_sigma(&self) -> Voltage {
        self.noise.sigma()
    }

    /// Passes a stream through the injector: each edge samples the
    /// AC-coupled noise to get its instantaneous `Vctrl`, and is delayed by
    /// the characterized fine-line transfer at that voltage.
    pub fn inject(&mut self, input: &EdgeStream) -> EdgeStream {
        let vctrls: Vec<Voltage> = input
            .times()
            .map(|t| {
                let dt = match self.last_edge {
                    Some(prev) => (t - prev).max(Time::ZERO),
                    None => Time::from_ns(10.0), // settle into stationarity
                };
                self.last_edge = Some(t);
                let n = self.noise.advance(dt);
                (self.bias + n).clamp(self.config.vga.vctrl_min, self.config.vga.vctrl_max)
            })
            .collect();
        self.model.transform_with_vctrls(input, &vctrls)
    }

    /// The local delay-vs-voltage slope at the bias point, in seconds per
    /// volt — the injection "gain" that converts voltage noise to jitter.
    pub fn injection_slope_s_per_v(&self) -> f64 {
        let dv = Voltage::from_mv(50.0);
        let interval = Time::from_ps(320.0);
        let lo = self.model.table().delay_at(self.bias - dv, interval);
        let hi = self.model.table().delay_at(self.bias + dv, interval);
        (hi - lo).as_s() / (2.0 * dv.as_v())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vardelay_measure::{tie_sequence, JitterStats};
    use vardelay_siggen::BitPattern;
    use vardelay_units::BitRate;

    fn injected_tj_pp(vpp_mv: f64) -> f64 {
        let mut injector = JitterInjector::new(&ModelConfig::paper_prototype().quiet(), 11);
        injector.set_noise_peak_to_peak(Voltage::from_mv(vpp_mv));
        let stream = EdgeStream::nrz(&BitPattern::prbs7(1, 4000), BitRate::from_gbps(3.2));
        let out = injector.inject(&stream);
        let tie = tie_sequence(&out);
        JitterStats::from_times(&tie)
            .expect("stream has edges")
            .peak_to_peak
            .as_ps()
    }

    #[test]
    fn silent_noise_adds_only_the_circuit_budget() {
        // With the noise source off, the only jitter left is the line's
        // own data-dependent jitter (envelope settling on PRBS data) —
        // which must stay within the paper's ~7 ps added-jitter budget.
        let pp = injected_tj_pp(0.0);
        assert!(pp < 8.0, "pp {pp}");
    }

    #[test]
    fn noise_injects_substantial_jitter() {
        // Paper Fig. 16: 900 mVpp noise raises TJ by ~41 ps. Accept a wide
        // band; EXPERIMENTS.md records the exact figure.
        let pp = injected_tj_pp(900.0);
        assert!((15.0..80.0).contains(&pp), "pp {pp}");
    }

    #[test]
    fn injected_jitter_grows_with_noise_amplitude() {
        let low = injected_tj_pp(300.0);
        let high = injected_tj_pp(900.0);
        assert!(high > low * 1.5, "low {low}, high {high}");
    }

    #[test]
    fn slope_is_tens_of_ps_per_volt() {
        let injector = JitterInjector::new(&ModelConfig::paper_prototype().quiet(), 1);
        let slope_ps_per_v = injector.injection_slope_s_per_v() * 1e12;
        assert!(
            (15.0..80.0).contains(&slope_ps_per_v),
            "slope {slope_ps_per_v} ps/V"
        );
    }

    #[test]
    fn bias_clamps_into_control_range() {
        let mut injector = JitterInjector::new(&ModelConfig::paper_prototype().quiet(), 1);
        injector.set_bias(Voltage::from_v(99.0));
        assert!((injector.bias().as_v() - 1.5).abs() < 1e-12);
    }
}
