//! Built-in circuit self-test (BIST).
//!
//! The paper's own hardware never matches its design — the coarse taps
//! came out 0/33/70/95 ps instead of 0/33/66/99 ps, and the deskew loop
//! lives under the DIB for months while calibration drifts. A production
//! installation therefore needs a way to ask *"is this channel still
//! trustworthy?"* before programming delays through it. This module
//! provides that check:
//!
//! * [`test_dac`] sweeps a control DAC through walking-one / walking-zero
//!   probe codes plus a coarse monotonicity ramp, detecting **stuck** and
//!   **flaky** bits and gross non-monotonicity;
//! * [`check_calibration`] inspects a measured [`CalibrationTable`] for
//!   the footprint of corrupted points — monotonization flattens a
//!   corrupted spike into a long flat run, so an excessive flat fraction
//!   or a collapsed range marks the table suspect;
//! * [`CircuitHealth`] aggregates both into a verdict the degraded-mode
//!   deskew loop uses to quarantine channels (DESIGN.md §10).
//!
//! Real hardware is exercised through the [`DacUnderTest`] trait so the
//! same test drives the ideal [`VctrlDac`] and the fault-injected models
//! in `vardelay-faults`.

use crate::calibration::CalibrationTable;
use crate::dac::VctrlDac;
use vardelay_units::{Time, Voltage};

/// A control DAC as seen by the self-test: something that converts codes
/// to voltages. `convert` takes `&mut self` because faulty hardware is
/// stateful (a flaky bit flips on some conversions and not others).
pub trait DacUnderTest {
    /// Resolution in bits.
    fn bits(&self) -> u8;
    /// The designed full-scale span (nameplate, not measured) — the
    /// yardstick stuck-bit thresholds are computed from.
    fn nominal_span(&self) -> Voltage;
    /// Performs one conversion of `code`.
    fn convert(&mut self, code: u32) -> Voltage;
}

impl DacUnderTest for VctrlDac {
    fn bits(&self) -> u8 {
        self.bits()
    }

    fn nominal_span(&self) -> Voltage {
        self.span()
    }

    fn convert(&mut self, code: u32) -> Voltage {
        self.voltage(code)
    }
}

/// Per-bit DAC health report from [`test_dac`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DacHealth {
    /// Resolution of the tested DAC.
    pub bits: u8,
    /// Bits that contribute no output swing and read back low.
    pub stuck_low: u32,
    /// Bits that contribute no output swing and read back high.
    pub stuck_high: u32,
    /// Bits whose repeated conversions of the same code disagree.
    pub flaky: u32,
    /// Largest downward output step observed on the ascending code ramp,
    /// in nominal LSBs (0 for a monotonic DAC).
    pub worst_inversion_lsb: f64,
}

impl DacHealth {
    /// All bits that failed the stuck test, regardless of polarity.
    pub fn stuck_mask(&self) -> u32 {
        self.stuck_low | self.stuck_high
    }

    /// Whether every bit toggles, repeats consistently, and the ramp is
    /// monotonic to within one nominal LSB.
    pub fn is_healthy(&self) -> bool {
        self.stuck_mask() == 0 && self.flaky == 0 && self.worst_inversion_lsb <= 1.0
    }
}

/// Number of repeated conversions per probe code when hunting flaky bits.
const FLAKY_PROBES: usize = 8;

/// Sweeps `dac` and reports per-bit health.
///
/// Bit `b` is **stuck** when neither the walking-one probe
/// (`1 << b` vs `0`) nor the walking-zero probe (`full` vs
/// `full & !(1 << b)`) moves the output by at least a quarter of the
/// bit's designed contribution. It is **flaky** when repeated conversions
/// of the same probe code disagree by more than a tenth of an LSB. A
/// coarse ascending ramp additionally records the worst downward step.
pub fn test_dac(dac: &mut impl DacUnderTest) -> DacHealth {
    let bits = dac.bits();
    let levels = 1u64 << bits;
    let full = (levels - 1) as u32;
    let lsb = dac.nominal_span() / (levels - 1) as f64;
    let mut stuck_low = 0u32;
    let mut stuck_high = 0u32;
    let mut flaky = 0u32;

    let probe = |dac: &mut dyn DacUnderTest, code: u32, flaky_bit: &mut bool| -> Voltage {
        let first = dac.convert(code);
        for _ in 1..FLAKY_PROBES {
            if (dac.convert(code) - first).abs() > lsb * 0.1 {
                *flaky_bit = true;
            }
        }
        first
    };

    let mut flaky_zero = false;
    let zero = probe(dac, 0, &mut flaky_zero);
    let mut flaky_full = false;
    let top = probe(dac, full, &mut flaky_full);
    for b in 0..bits {
        let weight = lsb * (1u64 << b) as f64;
        let mut bit_flaky = flaky_zero || flaky_full;
        // Walking one: only bit b set, against all-zeros.
        let one = probe(dac, 1 << b, &mut bit_flaky);
        let rise = (one - zero).abs();
        // Walking zero: bit b cleared from all-ones.
        let hole = probe(dac, full & !(1u32 << b), &mut bit_flaky);
        let drop = (top - hole).abs();
        if rise < weight * 0.25 && drop < weight * 0.25 {
            // The bit contributes nothing; the polarity shows in the
            // all-zeros conversion — a stuck-high bit leaks its weight
            // into the output even when every bit is requested low.
            if zero >= weight * 0.5 {
                stuck_high |= 1 << b;
            } else {
                stuck_low |= 1 << b;
            }
        }
        if bit_flaky {
            flaky |= 1 << b;
        }
    }

    // Coarse ascending ramp: ~256 samples across the code space; a
    // healthy DAC never steps downward.
    let step = (levels / 256).max(1) as u32;
    let mut worst_inversion = 0.0f64;
    let mut prev = dac.convert(0);
    let mut code = step;
    while u64::from(code) < levels {
        let v = dac.convert(code);
        if v < prev {
            worst_inversion = worst_inversion.max((prev - v) / lsb);
        }
        prev = v;
        code = code.saturating_add(step);
    }

    DacHealth {
        bits,
        stuck_low,
        stuck_high,
        flaky,
        worst_inversion_lsb: worst_inversion,
    }
}

/// Health report of a measured calibration table from
/// [`check_calibration`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationHealth {
    /// Number of grid points in the table.
    pub points: usize,
    /// Points flattened onto their predecessor by monotonization — the
    /// footprint a corrupted (spiked or decreasing) measurement leaves.
    pub flat_points: usize,
    /// The usable fine range of the table.
    pub range: Time,
    /// The smallest range the check was told to accept.
    pub expected_min_range: Time,
}

impl CalibrationHealth {
    /// The fraction of interior points that carry no delay information.
    pub fn flat_fraction(&self) -> f64 {
        if self.points <= 1 {
            return 0.0;
        }
        self.flat_points as f64 / (self.points - 1) as f64
    }

    /// Whether the curve still looks like a measured transfer function:
    /// enough range and no more than a quarter of its segments flat.
    /// (A handful of flat segments is normal — monotonization absorbs
    /// measurement noise — but a corrupted point flattens a long run.)
    pub fn is_healthy(&self) -> bool {
        self.range >= self.expected_min_range && self.flat_fraction() <= 0.25
    }
}

/// Inspects a calibration table for the footprint of corruption.
///
/// `expected_min_range` is the smallest fine range a working channel of
/// this design can produce (the paper's 4-stage prototype measures
/// ~56 ps at low rate; ~15 ps is a safe floor across operating points).
pub fn check_calibration(table: &CalibrationTable, expected_min_range: Time) -> CalibrationHealth {
    let delays = table.delays();
    let flat_points = delays.windows(2).filter(|w| w[1] <= w[0]).count();
    CalibrationHealth {
        points: delays.len(),
        flat_points,
        range: table.range(),
        expected_min_range,
    }
}

/// Overall verdict of a circuit self-test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthVerdict {
    /// Every check passed; the channel may be trusted.
    Healthy,
    /// Usable with reduced accuracy (flaky DAC bit, noisy calibration) —
    /// a deskew loop should prefer other channels as references.
    Degraded,
    /// Stuck hardware or a corrupt calibration; quarantine the channel.
    Faulty,
}

/// Aggregated self-test report for one delay channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CircuitHealth {
    /// DAC sweep results.
    pub dac: DacHealth,
    /// Calibration-table inspection results.
    pub calibration: CalibrationHealth,
}

impl CircuitHealth {
    /// Combines the per-subsystem checks into one verdict: stuck bits or
    /// an unusable calibration are [`HealthVerdict::Faulty`]; flaky bits
    /// or gross DAC non-monotonicity degrade; otherwise healthy.
    pub fn verdict(&self) -> HealthVerdict {
        if self.dac.stuck_mask() != 0 || !self.calibration.is_healthy() {
            return HealthVerdict::Faulty;
        }
        if self.dac.flaky != 0 || self.dac.worst_inversion_lsb > 1.0 {
            return HealthVerdict::Degraded;
        }
        HealthVerdict::Healthy
    }
}

impl core::fmt::Display for CircuitHealth {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{:?}: dac stuck {:#014b} flaky {:#014b}, calibration range {} ({} / {} points flat)",
            self.verdict(),
            self.dac.stuck_mask(),
            self.dac.flaky,
            self.calibration.range,
            self.calibration.flat_points,
            self.calibration.points,
        )
    }
}

impl crate::combined::CombinedDelayCircuit {
    /// Runs the built-in self-test on this circuit: sweeps its DAC and
    /// inspects its calibration table (measuring one with
    /// [`calibrate`](Self::calibrate) first if none is installed).
    ///
    /// The ideal behavioral models always come back
    /// [`HealthVerdict::Healthy`]; the point of the API is that the
    /// fault-injected wrappers in `vardelay-faults` do not.
    pub fn self_test(&mut self) -> CircuitHealth {
        if self.calibration().is_none() {
            self.calibrate();
        }
        let mut dac = *self.dac();
        let dac_health = test_dac(&mut dac);
        let table = self.calibration().expect("calibrated above");
        let cal_health = check_calibration(table, Time::from_ps(15.0));
        CircuitHealth {
            dac: dac_health,
            calibration: cal_health,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;

    #[test]
    fn ideal_dac_passes() {
        let mut dac = VctrlDac::twelve_bit();
        let h = test_dac(&mut dac);
        assert!(h.is_healthy(), "{h:?}");
        assert_eq!(h.stuck_mask(), 0);
        assert_eq!(h.flaky, 0);
        assert_eq!(h.worst_inversion_lsb, 0.0);
        assert_eq!(h.bits, 12);
    }

    /// A hand-rolled faulty DAC (the full fault models live in
    /// `vardelay-faults`; this pins the *detector* independently).
    struct BrokenDac {
        inner: VctrlDac,
        or_mask: u32,
        and_mask: u32,
    }

    impl DacUnderTest for BrokenDac {
        fn bits(&self) -> u8 {
            self.inner.bits()
        }
        fn nominal_span(&self) -> Voltage {
            self.inner.span()
        }
        fn convert(&mut self, code: u32) -> Voltage {
            self.inner.voltage((code | self.or_mask) & self.and_mask)
        }
    }

    #[test]
    fn stuck_low_bit_is_detected() {
        let mut dac = BrokenDac {
            inner: VctrlDac::twelve_bit(),
            or_mask: 0,
            and_mask: !(1 << 7),
        };
        let h = test_dac(&mut dac);
        assert_eq!(h.stuck_low, 1 << 7, "{h:?}");
        assert_eq!(h.stuck_high, 0);
        assert!(!h.is_healthy());
    }

    #[test]
    fn stuck_high_bit_is_detected() {
        let mut dac = BrokenDac {
            inner: VctrlDac::twelve_bit(),
            or_mask: 1 << 2,
            and_mask: u32::MAX,
        };
        let h = test_dac(&mut dac);
        assert_eq!(h.stuck_high, 1 << 2, "{h:?}");
        assert_eq!(h.stuck_low, 0);
    }

    #[test]
    fn healthy_calibration_passes() {
        let grid: Vec<Voltage> = (0..17)
            .map(|i| Voltage::from_v(1.5 * i as f64 / 16.0))
            .collect();
        let table = CalibrationTable::from_measurement(&grid, |v| {
            Time::from_ps(100.0 + 28.0 * (1.0 + (3.0 * (v.as_v() - 0.75)).tanh()))
        });
        let h = check_calibration(&table, Time::from_ps(15.0));
        assert!(h.is_healthy(), "{h:?}");
        assert_eq!(h.flat_points, 0);
    }

    #[test]
    fn corrupted_spike_leaves_a_detectable_flat_run() {
        let grid: Vec<Voltage> = (0..17)
            .map(|i| Voltage::from_v(1.5 * i as f64 / 16.0))
            .collect();
        // A corrupted measurement at point 4 spikes +80 ps; the running
        // maximum flattens every following genuine point onto it.
        let mut calls = 0usize;
        let table = CalibrationTable::from_measurement(&grid, |v| {
            let spike = if calls == 4 {
                Time::from_ps(80.0)
            } else {
                Time::ZERO
            };
            calls += 1;
            Time::from_ps(100.0 + 35.0 * v.as_v() / 1.5) + spike
        });
        let h = check_calibration(&table, Time::from_ps(15.0));
        assert!(!h.is_healthy(), "{h:?}");
        assert!(h.flat_fraction() > 0.25, "flat {}", h.flat_fraction());
    }

    #[test]
    fn collapsed_range_is_unhealthy() {
        let grid = [Voltage::ZERO, Voltage::from_v(0.75), Voltage::from_v(1.5)];
        let table = CalibrationTable::from_measurement(&grid, |_| Time::from_ps(100.0));
        let h = check_calibration(&table, Time::from_ps(15.0));
        assert!(!h.is_healthy());
        assert_eq!(h.range, Time::ZERO);
    }

    #[test]
    fn combined_circuit_self_test_is_healthy() {
        let mut c =
            crate::combined::CombinedDelayCircuit::new(&ModelConfig::paper_prototype().quiet(), 1);
        let health = c.self_test();
        assert_eq!(health.verdict(), HealthVerdict::Healthy, "{health}");
        // Self-test calibrated on demand.
        assert!(c.calibration().is_some());
    }

    #[test]
    fn verdict_ladder() {
        let healthy_dac = DacHealth {
            bits: 12,
            stuck_low: 0,
            stuck_high: 0,
            flaky: 0,
            worst_inversion_lsb: 0.0,
        };
        let healthy_cal = CalibrationHealth {
            points: 17,
            flat_points: 0,
            range: Time::from_ps(50.0),
            expected_min_range: Time::from_ps(15.0),
        };
        let h = CircuitHealth {
            dac: healthy_dac,
            calibration: healthy_cal,
        };
        assert_eq!(h.verdict(), HealthVerdict::Healthy);
        let mut flaky = h;
        flaky.dac.flaky = 1 << 3;
        assert_eq!(flaky.verdict(), HealthVerdict::Degraded);
        let mut stuck = h;
        stuck.dac.stuck_low = 1 << 11;
        assert_eq!(stuck.verdict(), HealthVerdict::Faulty);
        let mut flat = h;
        flat.calibration.flat_points = 9;
        assert_eq!(flat.verdict(), HealthVerdict::Faulty);
    }
}
