//! Error types of the delay-circuit API.

use vardelay_units::Time;

/// Error returned when a requested delay cannot be programmed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SetDelayError {
    /// The target lies outside the circuit's calibrated range.
    OutOfRange {
        /// The requested relative delay.
        requested: Time,
        /// The smallest programmable relative delay.
        min: Time,
        /// The largest programmable relative delay.
        max: Time,
    },
    /// [`CombinedDelayCircuit::calibrate`] has not been run yet.
    ///
    /// [`CombinedDelayCircuit::calibrate`]: crate::CombinedDelayCircuit::calibrate
    NotCalibrated,
}

impl core::fmt::Display for SetDelayError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SetDelayError::OutOfRange {
                requested,
                min,
                max,
            } => write!(
                f,
                "requested delay {requested} is outside the programmable range {min}..{max}"
            ),
            SetDelayError::NotCalibrated => {
                write!(f, "circuit has not been calibrated; run calibrate() first")
            }
        }
    }
}

impl std::error::Error for SetDelayError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_the_range() {
        let e = SetDelayError::OutOfRange {
            requested: Time::from_ps(200.0),
            min: Time::ZERO,
            max: Time::from_ps(140.0),
        };
        let s = e.to_string();
        assert!(s.contains("200.000 ps"));
        assert!(s.contains("140.000 ps"));
        assert!(SetDelayError::NotCalibrated
            .to_string()
            .contains("calibrate"));
    }
}
