//! The control-voltage DAC.
//!
//! "In our target application, Vctrl will be provided using a 12-bit DAC,
//! so sub-picosecond resolution will be achievable" (paper §2).

use vardelay_units::Voltage;

/// An ideal N-bit voltage-output DAC spanning a fixed range.
///
/// # Examples
///
/// ```
/// use vardelay_core::VctrlDac;
/// use vardelay_units::Voltage;
///
/// let dac = VctrlDac::twelve_bit();
/// assert_eq!(dac.levels(), 4096);
/// let code = dac.code_for(Voltage::from_v(0.75));
/// assert!((dac.voltage(code).as_v() - 0.75).abs() < dac.lsb().as_v());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VctrlDac {
    bits: u8,
    v_min: Voltage,
    v_max: Voltage,
}

impl VctrlDac {
    /// Creates a DAC with `bits` of resolution over `[v_min, v_max]`.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or exceeds 24, or if the range is empty.
    pub fn new(bits: u8, v_min: Voltage, v_max: Voltage) -> Self {
        assert!(bits > 0 && bits <= 24, "resolution must be 1..=24 bits");
        assert!(v_min < v_max, "voltage range must be non-empty");
        VctrlDac { bits, v_min, v_max }
    }

    /// The paper's 12-bit DAC over the 0–1.5 V control span.
    pub fn twelve_bit() -> Self {
        Self::new(12, Voltage::ZERO, Voltage::from_v(1.5))
    }

    /// Resolution in bits.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Number of output levels, `2^bits`.
    pub fn levels(&self) -> u32 {
        1u32 << self.bits
    }

    /// Full-scale output span.
    pub fn span(&self) -> Voltage {
        self.v_max - self.v_min
    }

    /// One least-significant-bit step.
    pub fn lsb(&self) -> Voltage {
        self.span() / (self.levels() - 1) as f64
    }

    /// The output voltage for `code` (clamped to the last level).
    pub fn voltage(&self, code: u32) -> Voltage {
        let code = code.min(self.levels() - 1);
        self.v_min + self.lsb() * code as f64
    }

    /// The nearest code for a target voltage (clamped into range).
    pub fn code_for(&self, target: Voltage) -> u32 {
        let frac = ((target - self.v_min) / self.span()).clamp(0.0, 1.0);
        (frac * (self.levels() - 1) as f64).round() as u32
    }

    /// The delay-setting resolution achieved through a transfer curve with
    /// the given slope, in seconds per volt — the paper's sub-picosecond
    /// claim: 56 ps / 1.5 V / 4096 ≈ 14 fs per code.
    pub fn delay_resolution(&self, slope_s_per_v: f64) -> vardelay_units::Time {
        vardelay_units::Time::from_s(slope_s_per_v.abs() * self.lsb().as_v())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vardelay_units::Time;

    #[test]
    fn twelve_bit_geometry() {
        let dac = VctrlDac::twelve_bit();
        assert_eq!(dac.bits(), 12);
        assert_eq!(dac.levels(), 4096);
        assert!((dac.lsb().as_mv() - 1500.0 / 4095.0).abs() < 1e-9);
        assert_eq!(dac.voltage(0), Voltage::ZERO);
        assert!((dac.voltage(4095).as_v() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn code_round_trip_error_is_below_one_lsb() {
        let dac = VctrlDac::twelve_bit();
        for i in 0..100 {
            let target = Voltage::from_v(1.5 * i as f64 / 99.0);
            let back = dac.voltage(dac.code_for(target));
            assert!((back - target).abs() <= dac.lsb() * 0.5 + Voltage::from_uv(1.0));
        }
    }

    #[test]
    fn clamping() {
        let dac = VctrlDac::twelve_bit();
        assert_eq!(dac.code_for(Voltage::from_v(-1.0)), 0);
        assert_eq!(dac.code_for(Voltage::from_v(9.0)), 4095);
        assert_eq!(dac.voltage(999_999), dac.voltage(4095));
    }

    #[test]
    fn sub_picosecond_delay_resolution() {
        // Paper anchor: ~56 ps over 1.5 V through a 12-bit DAC.
        let dac = VctrlDac::twelve_bit();
        let slope = 56e-12 / 1.5; // s per volt
        let res = dac.delay_resolution(slope);
        assert!(res < Time::from_ps(1.0), "resolution {res}");
        assert!(res > Time::from_fs(5.0));
    }

    #[test]
    #[should_panic(expected = "1..=24")]
    fn zero_bits_rejected() {
        let _ = VctrlDac::new(0, Voltage::ZERO, Voltage::from_v(1.0));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_range_rejected() {
        let _ = VctrlDac::new(8, Voltage::from_v(1.0), Voltage::from_v(1.0));
    }
}
