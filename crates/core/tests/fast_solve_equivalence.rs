//! The fast-path acceptance property (ISSUE 6 satellite): a `set_delay`
//! answered from the solve cache must agree with a full re-simulation —
//! same calibration table byte for byte, same hardware setting within
//! one table LSB.
//!
//! The fast-solve gate and cache are process-wide, so every test here
//! serializes on one mutex and restores the gate before returning.

use std::sync::{Mutex, OnceLock};

use vardelay_core::{
    clear_solve_cache, set_fast_solve_enabled, solve_cache_stats, CombinedDelayCircuit,
    DelaySetting, ModelConfig,
};
use vardelay_units::Time;

fn gate_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

/// Calibrates one circuit and solves every target with the fast path
/// forced to `fast`, returning the table CSV and the settings.
fn solve_all(fast: bool, targets: &[f64]) -> (String, Vec<DelaySetting>) {
    set_fast_solve_enabled(fast);
    clear_solve_cache();
    let mut circuit = CombinedDelayCircuit::new(&ModelConfig::paper_prototype(), 7);
    let table_csv = circuit.calibrate().to_csv();
    let settings = targets
        .iter()
        .map(|ps| circuit.set_delay(Time::from_ps(*ps)).expect("in range"))
        .collect();
    (table_csv, settings)
}

#[test]
fn fast_path_settings_agree_with_full_resimulation_within_one_lsb() {
    let _guard = gate_lock().lock().unwrap_or_else(|e| e.into_inner());

    // Sweep the usable range densely enough to cross every coarse tap.
    let targets: Vec<f64> = (0..=40).map(|i| 5.0 + i as f64 * 3.0).collect();
    let (slow_csv, slow) = solve_all(false, &targets);
    let (fast_csv, fast) = solve_all(true, &targets);

    // The cached-solve table is the same sweep memoized: byte-identical.
    assert_eq!(slow_csv, fast_csv, "calibration tables diverged");

    let mut circuit = CombinedDelayCircuit::new(&ModelConfig::paper_prototype(), 7);
    circuit.calibrate();
    let lsb = circuit.setting_resolution().expect("calibrated");
    for ((ps, s), f) in targets.iter().zip(&slow).zip(&fast) {
        assert_eq!(s.tap, f.tap, "coarse tap diverged at {ps} ps");
        assert!(
            s.dac_code.abs_diff(f.dac_code) <= 1,
            "dac code diverged at {ps} ps: {} vs {}",
            s.dac_code,
            f.dac_code
        );
        let diff = (s.predicted_delay - f.predicted_delay).abs();
        assert!(
            diff <= lsb,
            "predicted delay diverged at {ps} ps by {diff} (> 1 LSB = {lsb})"
        );
    }

    set_fast_solve_enabled(true);
}

#[test]
fn repeat_calibrations_hit_the_cache_and_return_identical_tables() {
    let _guard = gate_lock().lock().unwrap_or_else(|e| e.into_inner());

    set_fast_solve_enabled(true);
    clear_solve_cache();
    let mut a = CombinedDelayCircuit::new(&ModelConfig::paper_prototype(), 7);
    let first = a.calibrate().to_csv();
    let (_, misses_after_first) = solve_cache_stats();

    // A different seed, same configuration: the characterization
    // fingerprint matches, so the second circuit's calibration is the
    // cached table — no new measurement, byte-identical CSV.
    let mut b = CombinedDelayCircuit::new(&ModelConfig::paper_prototype(), 99);
    let second = b.calibrate().to_csv();
    let (hits, misses) = solve_cache_stats();
    assert_eq!(first, second, "cache hit must reproduce the table exactly");
    assert_eq!(misses, misses_after_first, "second calibrate re-measured");
    assert!(hits >= 1, "second calibrate missed the cache");

    // A materially different configuration must not alias.
    let mut cfg = ModelConfig::paper_prototype();
    cfg.stages += 1;
    let mut c = CombinedDelayCircuit::new(&cfg, 7);
    let third = c.calibrate().to_csv();
    assert_ne!(first, third, "distinct configs aliased in the solve cache");

    set_fast_solve_enabled(true);
}
