//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this crate provides
//! the subset of criterion's API the workspace's benches use —
//! [`Criterion`], [`criterion_group!`]/[`criterion_main!`],
//! `bench_function`, `Bencher::iter`/`iter_batched` and [`BatchSize`] —
//! backed by a simple warm-up + timed-samples loop. It reports the mean
//! and min/max per-iteration wall-clock on stdout, one line per bench:
//!
//! ```text
//! bench fig07_fine_delay_vs_vctrl ... 12.345 ms/iter (min 12.1, max 12.9, 10 samples)
//! ```
//!
//! There is no statistical regression machinery; the numbers are honest
//! wall-clock means, which is what the repro trajectory records.

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value sink, mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup; the shim times routine-only either
/// way, so the variants only exist for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// The bench harness configuration and runner.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per bench.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the warm-up duration before sampling starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the time budget for the timed samples.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Runs one named bench.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher);
        let n = bencher.samples.len().max(1);
        let total: Duration = bencher.samples.iter().sum();
        let mean = total / n as u32;
        let min = bencher.samples.iter().min().copied().unwrap_or_default();
        let max = bencher.samples.iter().max().copied().unwrap_or_default();
        println!(
            "bench {name} ... {} /iter (min {}, max {}, {n} samples)",
            fmt_duration(mean),
            fmt_duration(min),
            fmt_duration(max),
        );
        self
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Passed to the bench closure; runs and times the measured routine.
#[derive(Debug)]
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, called once per iteration.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up: at least one call, up to the configured duration.
        let warm_start = Instant::now();
        loop {
            black_box(routine());
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        let budget_start = Instant::now();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            black_box(routine());
            self.samples.push(t.elapsed());
            if budget_start.elapsed() >= self.measurement_time {
                break;
            }
        }
    }

    /// Times `routine` on inputs produced by `setup`; only the routine is
    /// timed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_start = Instant::now();
        loop {
            black_box(routine(setup()));
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        let budget_start = Instant::now();
        for _ in 0..self.sample_size {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.samples.push(t.elapsed());
            if budget_start.elapsed() >= self.measurement_time {
                break;
            }
        }
    }
}

/// Declares a bench group: a function running each target against the
/// given configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench binary's `main`, running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_collects_samples() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(50));
        let mut calls = 0u32;
        c.bench_function("shim_smoke", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        assert!(calls >= 4, "warm-up + samples ran: {calls}");
    }

    #[test]
    fn iter_batched_times_routine_only() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(50));
        c.bench_function("shim_batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_duration(Duration::from_micros(12)), "12.000 us");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.000 ms");
        assert_eq!(fmt_duration(Duration::from_secs(12)), "12.000 s");
    }
}
