//! Quickstart: build, calibrate and program the combined delay circuit,
//! then verify the programmed delay on live data with the waveform engine.
//!
//! Run with: `cargo run --release --example quickstart`

use vardelay::analog::AnalogBlock;
use vardelay::core::{CombinedDelayCircuit, ModelConfig, SetDelayError};
use vardelay::measure::tail_mean_delay;
use vardelay::siggen::{BitPattern, EdgeStream};
use vardelay::units::{BitRate, Time};
use vardelay::waveform::{to_edge_stream, Waveform};

fn main() -> Result<(), SetDelayError> {
    // 1. Build the paper's 4-stage prototype and calibrate its
    //    delay-vs-Vctrl transfer curve (the Fig. 7 procedure).
    let config = ModelConfig::paper_prototype();
    let mut circuit = CombinedDelayCircuit::new(&config, 42);
    circuit.calibrate();
    println!(
        "total programmable range: {}  (requirement: >= 120 ps)",
        circuit.total_range()?
    );
    println!(
        "setting resolution via 12-bit DAC: {}",
        circuit.setting_resolution()?
    );

    // 2. Program a few target delays and inspect the chosen operating
    //    points (coarse tap + DAC code).
    for target_ps in [10.0, 50.0, 75.0, 120.0] {
        let setting = circuit.set_delay(Time::from_ps(target_ps))?;
        println!(
            "target {target_ps:6.1} ps -> tap {} + Vctrl {} (code {:4}), predicted error {}",
            setting.tap, setting.vctrl, setting.dac_code, setting.predicted_error
        );
    }

    // 3. Verify one setting end-to-end on a 3.1 Gb/s clock pattern using
    //    the sampled-waveform engine.
    let rate = BitRate::from_bps(1.0 / 320e-12);
    let stimulus = EdgeStream::nrz(&BitPattern::clock(24), rate);
    let wf = Waveform::render(&stimulus, &config.render);

    circuit.set_delay(Time::ZERO)?;
    let base = to_edge_stream(&circuit.process(&wf), 0.0, rate.bit_period());
    circuit.set_delay(Time::from_ps(75.0))?;
    let out = to_edge_stream(&circuit.process(&wf), 0.0, rate.bit_period());

    let realized = tail_mean_delay(&base, &out, 8).expect("streams align");
    println!("programmed 75 ps, realized {realized} in simulation");
    Ok(())
}
