//! Jitter-tolerance mask of a CDR-based receiver — the serial-lane
//! (PCIe-class) counterpart of the fixed-phase tolerance test: the loop
//! tracks slow jitter, so tolerance is enormous at low frequencies and
//! floors out at the static eye margin above the loop bandwidth.
//!
//! Run with: `cargo run --release --example jtol_mask`

use vardelay::ate::{jitter_tolerance_mask, BangBangCdr, DutReceiver};
use vardelay::siggen::{BitPattern, EdgeStream};
use vardelay::units::{BitRate, Frequency, Time};

fn main() {
    let rate = BitRate::from_gbps(6.4);
    let base = EdgeStream::nrz(&BitPattern::prbs7(1, 20_000), rate);
    let cdr = BangBangCdr::new(rate.bit_period(), Time::from_ps(0.5));
    let rx = DutReceiver::new(Time::from_ps(45.0), Time::from_ps(45.0));

    println!(
        "CDR: bang-bang, step {}, approx loop bandwidth {}",
        cdr.step(),
        cdr.loop_bandwidth(0.5)
    );
    println!("receiver: ±45 ps window at a {} UI\n", rate.bit_period());

    let freqs: Vec<Frequency> = [0.02, 0.1, 0.5, 2.0, 10.0, 50.0, 200.0, 400.0]
        .iter()
        .map(|&m| Frequency::from_mhz(m))
        .collect();
    let mask = jitter_tolerance_mask(&cdr, &rx, &base, &freqs, Time::from_ps(2000.0), 1e-3);

    println!(
        "{:>12} {:>16}  (one # = 25 ps)",
        "PJ frequency", "tolerated amp"
    );
    for p in &mask {
        let bars = (p.tolerated_amplitude.as_ps() / 25.0).round() as usize;
        println!(
            "{:>12} {:>13.1} ps  |{}",
            format!("{}", p.frequency),
            p.tolerated_amplitude.as_ps(),
            "#".repeat(bars.min(60))
        );
    }
    println!(
        "\nthe classic mask: sinusoidal jitter below the loop bandwidth is \
         tracked and tolerated in UI-scale amounts; above it the tolerance \
         floors at the receiver's static margin."
    );
}
