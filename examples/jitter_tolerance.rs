//! A full receiver jitter-tolerance run — the production use of the
//! paper's §5 injector: ramp the injected jitter until the DUT's receiver
//! starts failing, and report the margin.
//!
//! Run with: `cargo run --release --example jitter_tolerance`

use vardelay::ate::JitterToleranceTest;
use vardelay::core::ModelConfig;
use vardelay::units::Time;

fn main() {
    let config = ModelConfig::paper_prototype().quiet();
    let test = JitterToleranceTest::standard(7);
    println!(
        "stress ramp: {} noise steps at {} on a PRBS7 stream of {} bits",
        test.noise_steps.len(),
        test.rate,
        test.bits
    );
    println!(
        "receiver window: setup {} / hold {}; failure threshold {} violations/bit\n",
        test.receiver.setup(),
        test.receiver.hold(),
        test.fail_threshold
    );

    let result = test.run(&config);
    println!(
        "{:>16} {:>16} {:>8}",
        "injected TJ", "violation rate", "verdict"
    );
    for (tj, rate) in result.curve.points() {
        println!(
            "{:>13.1} ps {:>16.5} {:>8}",
            tj,
            rate,
            if rate <= test.fail_threshold {
                "PASS"
            } else {
                "FAIL"
            }
        );
    }

    match result.max_tolerated {
        Some(t) => println!("\nmaximum tolerated total jitter: {t}"),
        None => println!("\nreceiver failed even without injected stress"),
    }
    println!(
        "requirement check (>=25 ps): {}",
        if result.meets(Time::from_ps(25.0)) {
            "met"
        } else {
            "NOT met"
        }
    );
    println!(
        "\n(note: injectable jitter is bounded by the fine-delay range, as \
         the paper's §5 observes)"
    );
}
