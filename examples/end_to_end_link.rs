//! A complete test-cell signal path: ATE source → vardelay circuit →
//! lossy fixture trace → DUT receiver, with eye-mask compliance at the
//! far end.
//!
//! This is the situation the paper's photo caption alludes to ("must fit
//! the electronics in a very limited space under the Device Interface
//! Board"): the delay circuit sits between tester and DUT, and whatever
//! jitter it adds must still leave a compliant eye after the fixture.
//!
//! Run with: `cargo run --release --example end_to_end_link`

use vardelay::analog::{AnalogBlock, LossyChannel};
use vardelay::core::{CombinedDelayCircuit, ModelConfig};
use vardelay::measure::{eye_metrics, EyeMask};
use vardelay::siggen::{BitPattern, EdgeStream, GaussianRj, JitterModel};
use vardelay::units::{BitRate, Time};
use vardelay::waveform::{EyeDiagram, RenderConfig, Waveform};

fn eye_of(wf: &Waveform, ui: Time) -> EyeDiagram {
    let mut eye = EyeDiagram::new(ui, 96, 48, 0.5);
    eye.add_waveform(wf);
    eye
}

fn report(label: &str, eye: &EyeDiagram) {
    let m = eye_metrics(eye).expect("eye has crossings");
    let margin = EyeMask::max_passing_width(eye, 0.08);
    println!(
        "{label:<28} width {} | height {:4.0} mV | TJ {} | mask margin {:.3} UI",
        m.width,
        m.height * 1e3,
        m.crossing_peak_to_peak,
        margin
    );
}

fn main() {
    let rate = BitRate::from_gbps(4.8);
    let config = ModelConfig::paper_prototype();

    // ATE source with realistic jitter.
    let clean = EdgeStream::nrz(&BitPattern::prbs7(1, 500), rate);
    let stream = GaussianRj::new(Time::from_ps(1.2), 3).apply(&clean);
    let source = Waveform::render(&stream, &RenderConfig::default_source());
    report("at the ATE source:", &eye_of(&source, rate.bit_period()));

    // Through the calibrated delay circuit, programmed mid-range.
    let mut circuit = CombinedDelayCircuit::new(&config, 3);
    circuit.calibrate();
    circuit
        .set_delay(Time::from_ps(70.0))
        .expect("mid-range target");
    let delayed = circuit.process(&source);
    report(
        "after the delay circuit:",
        &eye_of(&delayed, rate.bit_period()),
    );

    // Across the fixture trace to the DUT.
    let mut fixture = LossyChannel::fixture();
    let at_dut = fixture.process(&delayed);
    report("at the DUT (fixture):", &eye_of(&at_dut, rate.bit_period()));

    // And the stress case: a backplane-class path.
    let mut backplane = LossyChannel::backplane();
    let stressed = backplane.process(&delayed);
    report(
        "at the DUT (backplane):",
        &eye_of(&stressed, rate.bit_period()),
    );

    println!(
        "\ncompliance: the delay circuit consumes a little margin; the \
         interconnect consumes far more — which is why adding only ~2 \
         levels of logic (the coarse mux) mattered to the authors."
    );
}
