//! A production margin shmoo: sweep the receiver's sampling phase against
//! injected jitter stress and map the surviving window — the test-floor
//! view of the injector's §5 application.
//!
//! Run with: `cargo run --release --example margin_shmoo`

use vardelay::ate::{margin_shmoo, DutReceiver, ShmooConfig};
use vardelay::core::ModelConfig;
use vardelay::units::Time;

fn main() {
    let model = ModelConfig::paper_prototype().quiet();
    let receiver = DutReceiver::new(Time::from_ps(30.0), Time::from_ps(30.0));
    let mut shmoo = ShmooConfig::standard(11);
    shmoo.steps = 64;

    println!(
        "shmoo: {} at {}, receiver window ±30 ps, {} stress levels\n",
        shmoo.bits,
        shmoo.rate,
        shmoo.noise_levels.len()
    );
    let map = margin_shmoo(&model, &receiver, &shmoo);
    println!("{}", map.to_table());

    // Visual map: one row per stress level, '#' = clean position.
    println!("phase →   (each column is 1/{} UI)", shmoo.steps);
    for (row, &vpp) in map.rows.iter().zip(&shmoo.noise_levels) {
        let bar: String = (0..map.steps)
            .map(|i| if i < row.open_positions { '#' } else { '.' })
            .collect();
        println!("{:>6.0} mVpp |{bar}|", vpp.as_mv());
    }

    match map.stress_margin_at(0.25) {
        Some(v) => {
            println!("\nlargest stress keeping a quarter-UI window open: {v} of injected noise")
        }
        None => println!("\nno stress level keeps a quarter-UI window open"),
    }
}
