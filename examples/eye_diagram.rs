//! Render ASCII eye diagrams before and after the delay circuit — the
//! suite's version of the paper's scope screenshots (Figs. 12–13).
//!
//! Run with: `cargo run --release --example eye_diagram`

use vardelay::analog::AnalogBlock;
use vardelay::core::{FineDelayLine, ModelConfig};
use vardelay::measure::eye_metrics;
use vardelay::siggen::{BitPattern, EdgeStream, GaussianRj, JitterModel};
use vardelay::units::{BitRate, Time, Voltage};
use vardelay::waveform::render::eye_to_ascii;
use vardelay::waveform::{EyeDiagram, Waveform};

fn show(title: &str, eye: &EyeDiagram) {
    println!("--- {title} ---");
    print!("{}", eye_to_ascii(eye));
    if let Some(m) = eye_metrics(eye) {
        println!(
            "eye width {} | height {:.0} mV | crossing TJ pk-pk {}\n",
            m.width,
            m.height * 1e3,
            m.crossing_peak_to_peak
        );
    }
}

fn main() {
    let rate = BitRate::from_gbps(4.8);
    let config = ModelConfig::paper_prototype();

    // Source: PRBS7 with a little random jitter, as on the bench.
    let clean = EdgeStream::nrz(&BitPattern::prbs7(1, 600), rate);
    let input = GaussianRj::new(Time::from_ps(1.2), 5).apply(&clean);
    let wf = Waveform::render(&input, &config.render);

    let mut eye_in = EyeDiagram::new(rate.bit_period(), 72, 24, 0.5);
    eye_in.add_waveform(&wf);
    show("input eye, 4.8 Gb/s PRBS7", &eye_in);

    // Through the fine delay line at minimum and maximum Vctrl: the whole
    // eye shifts by the fine range (Fig. 12's two overlaid crossings).
    let mut line = FineDelayLine::new(&config, 5);
    for (label, vctrl) in [("min Vctrl", 0.0), ("max Vctrl", 1.5)] {
        line.set_vctrl(Voltage::from_v(vctrl));
        let out = line.process(&wf);
        let mut eye = EyeDiagram::new(rate.bit_period(), 72, 24, 0.5);
        eye.add_waveform(&out);
        show(&format!("output eye at {label}"), &eye);
    }

    println!(
        "the crossing moved by the fine delay range ({}) between the two settings",
        line.delay_range(rate.bit_period())
    );
}
