//! Deskew a parallel ATE bus — the paper's end application (Fig. 2).
//!
//! A HyperTransport-3-like source-synchronous bus needs <5 ps
//! channel-to-channel alignment at 6.4 Gb/s, but the tester's native
//! deskew steps are ~100 ps. The closed loop measures each channel's
//! skew, removes the bulk with ATE steps, and the residue with one
//! vardelay circuit per channel.
//!
//! Run with: `cargo run --release --example deskew_bus`

use vardelay::ate::report::{deskew_summary, deskew_table};
use vardelay::ate::{BusScenario, DeskewEngine, DutReceiver};
use vardelay::core::ModelConfig;

fn main() {
    let mut scenario = BusScenario::hypertransport3(7);
    println!(
        "scenario: {:?}, {} channels, alignment requirement {}",
        scenario.kind(),
        scenario.bus().width(),
        scenario.alignment_requirement()
    );
    println!(
        "can the ATE native 100 ps steps meet it alone? {}",
        if scenario.ate_native_is_sufficient() {
            "yes"
        } else {
            "no — this is why the paper builds the circuit"
        }
    );

    let engine = DeskewEngine::new(&ModelConfig::paper_prototype(), 7);
    let outcome = engine
        .run(scenario.bus_mut())
        .expect("a healthy bus deskews");
    println!("\n{}", deskew_table(&outcome));
    println!("{}", deskew_summary(&outcome));

    // Sanity-check the corrected bus at the receiver: every channel's eye
    // must be open at a common sampling phase (Fig. 1's situation).
    let rx = DutReceiver::ht3();
    let phase = rx.best_phase(&outcome.corrected_streams[0], 64);
    println!("\nsampling every channel at the common phase {phase}:");
    for (i, stream) in outcome.corrected_streams.iter().enumerate() {
        let rate = rx.violation_rate(stream, phase);
        println!("  channel {i}: violation rate {rate:.5}");
    }
}
