//! The paper's 4-channel production unit: per-instance manufacturing
//! spread, shared versus per-channel calibration, and the resulting
//! channel-to-channel setting accuracy.
//!
//! Run with: `cargo run --release --example multichannel`

use vardelay::core::{CalibrationStrategy, ModelConfig, MultiChannelDelay};
use vardelay::units::Time;

fn main() {
    let config = ModelConfig::paper_prototype().quiet();
    println!("building the paper's 4-channel unit with default board spread…\n");

    for strategy in [CalibrationStrategy::Shared, CalibrationStrategy::PerChannel] {
        let mut unit = MultiChannelDelay::new(&config, 4, 99);
        unit.calibrate(strategy);
        let range = unit.common_range().expect("calibrated");
        let accuracy = unit
            .setting_accuracy(Time::from_ps(60.0))
            .expect("target in range");
        println!("{strategy:?} calibration:");
        println!("  guaranteed common range: {range}");
        println!("  channel-to-channel accuracy at a 60 ps target: {accuracy} pk-pk");
        println!(
            "  meets the <5 ps channel-to-channel budget: {}\n",
            if accuracy < Time::from_ps(5.0) {
                "yes"
            } else {
                "no — calibrate per channel"
            }
        );
    }

    // Program a staircase across the four channels, as a bus deskew would.
    let mut unit = MultiChannelDelay::new(&config, 4, 99);
    unit.calibrate(CalibrationStrategy::PerChannel);
    let targets = [
        Time::from_ps(12.0),
        Time::from_ps(47.0),
        Time::from_ps(81.0),
        Time::from_ps(116.0),
    ];
    let settings = unit.set_delays(&targets).expect("targets in range");
    println!("staircase programming:");
    for (t, s) in targets.iter().zip(&settings) {
        println!(
            "  target {t}: tap {} code {:4} predicted error {}",
            s.tap, s.dac_code, s.predicted_error
        );
    }
}
