//! Jitter injection for receiver tolerance testing (paper §5).
//!
//! AC-coupling a Gaussian voltage-noise source onto the fine line's
//! `Vctrl` converts voltage noise into timing jitter on the passed signal.
//! This example sweeps the noise amplitude and watches a DUT receiver's
//! eye close — exactly what a jitter-tolerance test does.
//!
//! Run with: `cargo run --release --example jitter_injection`

use vardelay::ate::DutReceiver;
use vardelay::core::{JitterInjector, ModelConfig};
use vardelay::measure::{tie_sequence, JitterStats};
use vardelay::siggen::{BitPattern, EdgeStream};
use vardelay::units::{BitRate, Time, Voltage};

fn main() {
    let rate = BitRate::from_gbps(3.2);
    let stream = EdgeStream::nrz(&BitPattern::prbs7(1, 6000), rate);
    let rx = DutReceiver::ht3();
    let config = ModelConfig::paper_prototype().quiet();

    println!(
        "injecting noise onto Vctrl of a {} stream; receiver window ±10 ps",
        rate
    );
    println!(
        "{:>10} {:>12} {:>14} {:>16}",
        "noise Vpp", "TJ out (ps)", "eye open (UI)", "violation rate"
    );

    for vpp_mv in [0.0, 150.0, 300.0, 450.0, 600.0, 750.0, 900.0] {
        let mut injector = JitterInjector::new(&config, 11);
        injector.set_noise_peak_to_peak(Voltage::from_mv(vpp_mv));
        let out = injector.inject(&stream);

        let tj = JitterStats::from_times(&tie_sequence(&out))
            .expect("stream has edges")
            .peak_to_peak;
        let scan = rx.eye_scan(&out, 64);
        let open = scan.points().filter(|&(_, r)| r == 0.0).count() as f64 / 64.0;
        let centre = rx.best_phase(&out, 64);
        let rate_at_centre = rx.violation_rate(&out, centre);
        println!(
            "{:>8.0}mV {:>12.2} {:>14.3} {:>16.5}",
            vpp_mv,
            tj.as_ps(),
            open,
            rate_at_centre
        );
    }

    println!(
        "\nslope of the injection transfer at the bias point: {:.1} ps/V",
        JitterInjector::new(&config, 11).injection_slope_s_per_v() * 1e12
    );
    let _ = Time::ZERO;
}
