//! The Fig. 15 experiment as a runnable sweep: fine delay range versus
//! RZ clock frequency for the 4-stage prototype and the early 2-stage
//! unit, rendered as an ASCII chart.
//!
//! Run with: `cargo run --release --example frequency_sweep`

use vardelay::core::{FineDelayLine, ModelConfig};
use vardelay::units::{Frequency, Time};

fn bar(value: f64, scale: f64) -> String {
    let n = ((value / scale) * 50.0).round().max(0.0) as usize;
    "#".repeat(n)
}

fn main() {
    let four = FineDelayLine::new(&ModelConfig::paper_prototype().quiet(), 1);
    let two = FineDelayLine::new(&ModelConfig::early_two_stage().quiet(), 1);

    println!("fine delay range vs RZ clock frequency (one # = 1.2 ps)\n");
    println!("{:>6}  {:>8}  {:>8}", "GHz", "4-stage", "2-stage");
    let max = 60.0;
    for f in [0.5, 1.0, 1.5, 2.0, 2.6, 3.2, 4.0, 4.8, 5.6, 6.4, 6.8] {
        let interval = Frequency::from_ghz(f).period() * 0.5;
        let r4 = four.delay_range(interval).as_ps();
        let r2 = two.delay_range(interval).as_ps();
        println!("{f:>6.1}  {r4:>8.1}  {r2:>8.1}   |{}", bar(r4, max));
        println!("{:>26}   |{}", "", bar(r2, max));
    }

    println!(
        "\nthe coarse section's 33 ps step is covered wherever the range \
         stays above 33 ps;"
    );
    println!(
        "the 4-stage circuit holds that to ~4.8 GHz clocks and remains \
         usable beyond 6.4 GHz,"
    );
    println!("while the 2-stage unit is ineffective past ~6 GHz (paper Fig. 15).");
    let _ = Time::ZERO;
}
