//! Integration: independent measurement methods agreeing on the same
//! physical quantity — the strongest check a simulator can offer.

use vardelay::analog::{AnalogBlock, LossyChannel};
use vardelay::core::{FineDelayLine, ModelConfig};
use vardelay::measure::{mean_delay, tail_mean_delay, xcorr_delay};
use vardelay::siggen::{BitPattern, EdgeStream};
use vardelay::units::{BitRate, Time, Voltage};
use vardelay::waveform::{to_edge_stream, RenderConfig, Waveform};

#[test]
fn crossing_and_correlation_delay_agree_on_the_fine_line() {
    let cfg = ModelConfig::paper_prototype().quiet();
    let rate = BitRate::from_gbps(2.0);
    let stream = EdgeStream::nrz(&BitPattern::prbs7(1, 64), rate);
    let wf = Waveform::render(&stream, &cfg.render);

    let mut line = FineDelayLine::new(&cfg, 1);
    for v in [0.2, 0.8, 1.4] {
        line.set_vctrl(Voltage::from_v(v));
        let out = line.process(&wf);

        let out_stream = to_edge_stream(&out, 0.0, rate.bit_period());
        let by_crossings = tail_mean_delay(&stream, &out_stream, 8).expect("edges align");
        let by_xcorr = xcorr_delay(&wf, &out, Time::from_ps(600.0)).expect("well-posed traces");
        assert!(
            (by_crossings - by_xcorr).abs() < Time::from_ps(3.0),
            "at {v} V: crossings {by_crossings} vs xcorr {by_xcorr}"
        );
    }
}

#[test]
fn correlation_still_measures_after_a_lossy_channel() {
    // The crossing method degrades when the channel attenuates the swing;
    // cross-correlation keeps working and both agree where both work.
    let rate = BitRate::from_gbps(2.0);
    let stream = EdgeStream::nrz(&BitPattern::prbs7(1, 64), rate);
    let wf = Waveform::render(&stream, &RenderConfig::default_source());
    let mut channel = LossyChannel::new(
        Time::from_ps(750.0),
        8.0,
        vardelay::units::Frequency::from_ghz(6.0),
    );
    let out = channel.process(&wf);

    let by_xcorr = xcorr_delay(&wf, &out, Time::from_ns(1.2)).expect("well-posed");
    // Flight time plus two poles of group delay (2·tau ≈ 53 ps).
    assert!(
        (by_xcorr.as_ps() - 750.0) > 20.0 && (by_xcorr.as_ps() - 750.0) < 120.0,
        "xcorr {by_xcorr}"
    );

    let out_stream = to_edge_stream(&out, 0.0, rate.bit_period());
    if out_stream.len() == stream.len() {
        let by_crossings = mean_delay(&stream, &out_stream).expect("paired");
        assert!(
            (by_crossings - by_xcorr).abs() < Time::from_ps(10.0),
            "crossings {by_crossings} vs xcorr {by_xcorr}"
        );
    }
}

#[test]
fn cdr_residual_matches_open_loop_tie_for_wideband_jitter() {
    use vardelay::ate::BangBangCdr;
    use vardelay::measure::{tie_sequence, JitterStats};
    use vardelay::siggen::{GaussianRj, JitterModel};

    let rate = BitRate::from_gbps(6.4);
    let clean = EdgeStream::nrz(&BitPattern::prbs7(1, 20_000), rate);
    let jittered = GaussianRj::new(Time::from_ps(2.5), 7).apply(&clean);

    // Open-loop TIE RMS…
    let open = JitterStats::from_times(&tie_sequence(&jittered))
        .expect("edges exist")
        .rms;
    // …versus the CDR's residual RMS: wideband RJ is above the loop
    // bandwidth, so the loop cannot remove it.
    let cdr = BangBangCdr::new(rate.bit_period(), Time::from_ps(0.4));
    let track = cdr.track(&jittered);
    let tail = &track.residual[track.residual.len() / 2..];
    let closed = JitterStats::from_times(tail).expect("edges exist").rms;
    assert!(
        (open - closed).abs() < open * 0.35,
        "open {open} vs closed {closed}"
    );
}

#[test]
fn circuit_ddj_is_monotone_in_preceding_run_length() {
    // The envelope-settling mechanism implies: the longer the line rested,
    // the larger the developed swing, the later the next crossing. The
    // DDJ decomposition must see monotone context means on circuit output.
    use vardelay::analog::EdgeTransform;
    use vardelay::measure::ddj_by_run_length;

    let cfg = ModelConfig::paper_prototype().quiet();
    let line = FineDelayLine::new(&cfg, 1);
    let (vctrls, intervals) = line.default_grids();
    let mut model = line.edge_model(&vctrls, &intervals, 2);
    model.set_vctrl(Voltage::from_v(0.75));

    let stream = EdgeStream::nrz(&BitPattern::prbs7(1, 5000), BitRate::from_gbps(6.4));
    let out = model.transform(&stream);
    let d = ddj_by_run_length(&out, 7).expect("long capture");
    let populated: Vec<f64> = d
        .context_means
        .iter()
        .zip(&d.context_counts)
        .filter(|&(_, &c)| c > 20)
        .map(|(m, _)| m.as_ps())
        .collect();
    assert!(populated.len() >= 4, "too few contexts: {populated:?}");
    for w in populated.windows(2) {
        assert!(w[1] > w[0] - 0.1, "not monotone: {populated:?}");
    }
    // The total DDJ is a visible, bounded effect.
    assert!(
        d.ddj_peak_to_peak > Time::from_ps(2.0),
        "{}",
        d.ddj_peak_to_peak
    );
    assert!(
        d.ddj_peak_to_peak < Time::from_ps(20.0),
        "{}",
        d.ddj_peak_to_peak
    );
}

#[test]
fn stress_pattern_extracts_more_ddj_than_prbs() {
    // The run-stress compliance pattern maximizes long-run -> single-bit
    // events, so it must expose at least as much DDJ as PRBS7.
    use vardelay::analog::EdgeTransform;
    use vardelay::measure::ddj_by_run_length;
    use vardelay::siggen::compliance::run_stress;

    let cfg = ModelConfig::paper_prototype().quiet();
    let line = FineDelayLine::new(&cfg, 1);
    let (vctrls, intervals) = line.default_grids();
    let rate = BitRate::from_gbps(6.4);

    let ddj_of = |pattern: &BitPattern| {
        let mut model = line.edge_model(&vctrls, &intervals, 2);
        model.set_vctrl(Voltage::from_v(0.75));
        let out = model.transform(&EdgeStream::nrz(pattern, rate));
        ddj_by_run_length(&out, 7)
            .expect("long capture")
            .ddj_peak_to_peak
    };

    let prbs = ddj_of(&BitPattern::prbs7(1, 4000));
    let stress = ddj_of(&run_stress(7, 6, 300));
    assert!(
        stress >= prbs * 0.9,
        "stress {stress} should be at least PRBS-level {prbs}"
    );
}
