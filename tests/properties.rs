//! Property-based tests (proptest) over the suite's core invariants.

use proptest::prelude::*;
use vardelay::analog::DelayTable;
use vardelay::core::{CalibrationTable, VctrlDac};
use vardelay::measure::{tie_sequence, Histogram};
use vardelay::siggen::{
    BitPattern, EdgeStream, GaussianRj, JitterModel, Prbs, PrbsOrder, SplitMix64,
};
use vardelay::units::{BitRate, Time, Voltage};

proptest! {
    /// Any PRBS7 window of one full period is balanced (64 ones).
    #[test]
    fn prbs7_window_balance(seed in 1u64..1000) {
        let ones = Prbs::new(PrbsOrder::Prbs7, seed)
            .take(127)
            .filter(|&b| b)
            .count();
        prop_assert_eq!(ones, 64);
    }

    /// NRZ encoding of any pattern yields a well-formed stream whose edge
    /// count equals the pattern's transition count (plus the initial rise
    /// when bit 0 is high).
    #[test]
    fn nrz_edge_count_matches_transitions(bits in proptest::collection::vec(any::<bool>(), 1..200)) {
        let pattern = BitPattern::new(bits.clone());
        let stream = EdgeStream::nrz(&pattern, BitRate::from_gbps(2.0));
        prop_assert!(stream.is_well_formed());
        let expected = pattern.transition_count() + usize::from(bits[0]);
        prop_assert_eq!(stream.len(), expected);
    }

    /// Jitter application never breaks stream invariants, whatever the
    /// sigma.
    #[test]
    fn jitter_preserves_well_formedness(
        sigma_ps in 0.0f64..500.0,
        seed in 0u64..500,
        bits in 2usize..300,
    ) {
        let stream = EdgeStream::nrz(&BitPattern::clock(bits), BitRate::from_gbps(2.0));
        let jittered = GaussianRj::new(Time::from_ps(sigma_ps), seed).apply(&stream);
        prop_assert!(jittered.is_well_formed());
        prop_assert_eq!(jittered.len(), stream.len());
    }

    /// A pure time shift leaves TIE at zero for any pattern and delay.
    #[test]
    fn tie_is_shift_invariant(
        delay_ps in -400.0f64..400.0,
        seed in 1u64..100,
    ) {
        let stream = EdgeStream::nrz(&BitPattern::prbs7(seed, 254), BitRate::from_gbps(2.0));
        let tie = tie_sequence(&stream.delayed(Time::from_ps(delay_ps)));
        for t in tie {
            prop_assert!(t.abs() < Time::from_fs(50.0), "residual {}", t);
        }
    }

    /// DAC code→voltage→code round-trips exactly for every code.
    #[test]
    fn dac_round_trip(bits in 2u8..16, code_frac in 0.0f64..1.0) {
        let dac = VctrlDac::new(bits, Voltage::ZERO, Voltage::from_v(1.5));
        let code = (code_frac * (dac.levels() - 1) as f64) as u32;
        prop_assert_eq!(dac.code_for(dac.voltage(code)), code);
    }

    /// Calibration inversion round-trips for arbitrary monotone curves.
    #[test]
    fn calibration_inversion_round_trip(
        base_ps in 50.0f64..300.0,
        slope in 5.0f64..60.0,
        curvature in -2.0f64..2.0,
        target_frac in 0.0f64..1.0,
    ) {
        let grid: Vec<Voltage> = (0..12)
            .map(|i| Voltage::from_v(1.5 * i as f64 / 11.0))
            .collect();
        let table = CalibrationTable::from_measurement(&grid, |v| {
            let x = v.as_v();
            Time::from_ps(base_ps + slope * x + curvature * x * x)
        });
        let target = table.min_delay() + table.range() * target_frac;
        let vctrl = table.vctrl_for_delay(target).expect("target within span");
        let back = table.delay_at(vctrl);
        prop_assert!(
            (back - target).abs() < Time::from_ps(0.7),
            "target {} -> {}", target, back
        );
    }

    /// Delay-table lookups always stay within the measured value envelope.
    #[test]
    fn delay_table_interpolation_is_bounded(
        v_query in -1.0f64..3.0,
        i_query in 10.0f64..5000.0,
    ) {
        let table = DelayTable::new(
            vec![Voltage::from_v(0.0), Voltage::from_v(0.75), Voltage::from_v(1.5)],
            vec![Time::from_ps(100.0), Time::from_ps(1000.0)],
            vec![
                vec![Time::from_ps(200.0), Time::from_ps(205.0)],
                vec![Time::from_ps(220.0), Time::from_ps(235.0)],
                vec![Time::from_ps(240.0), Time::from_ps(260.0)],
            ],
        );
        let d = table.delay_at(Voltage::from_v(v_query), Time::from_ps(i_query));
        prop_assert!(d >= Time::from_ps(200.0) && d <= Time::from_ps(260.0), "{}", d);
    }

    /// Histogram totals are conserved: in-range + underflow + overflow.
    #[test]
    fn histogram_conserves_samples(data in proptest::collection::vec(-100.0f64..100.0, 1..500)) {
        let mut h = Histogram::new(-50.0, 50.0, 16);
        h.extend(data.iter().copied());
        let binned: u64 = (0..h.bins()).map(|i| h.count_in_bin(i)).sum();
        prop_assert_eq!(binned + h.underflow() + h.overflow(), data.len() as u64);
        // Percentiles are order statistics of the retained samples.
        let p0 = h.percentile(0.0).expect("non-empty");
        let p1 = h.percentile(1.0).expect("non-empty");
        prop_assert!(p0 <= p1);
    }

    /// `with_times` repairs arbitrary displacements into a valid stream.
    #[test]
    fn with_times_always_repairs(
        displacements in proptest::collection::vec(-2000.0f64..2000.0, 4..100),
    ) {
        let stream = EdgeStream::nrz(
            &BitPattern::clock(displacements.len()),
            BitRate::from_gbps(1.0),
        );
        let times: Vec<Time> = stream
            .times()
            .zip(&displacements)
            .map(|(t, &d)| t + Time::from_ps(d))
            .collect();
        let repaired = stream.with_times(&times);
        prop_assert!(repaired.is_well_formed());
    }

    /// SplitMix64 uniform samples respect their bounds for any seed.
    #[test]
    fn rng_uniform_bounds(seed in any::<u64>(), lo in -10.0f64..0.0, width in 0.001f64..20.0) {
        let mut rng = SplitMix64::new(seed);
        for _ in 0..100 {
            let x = rng.uniform(lo, lo + width);
            prop_assert!(x >= lo && x < lo + width);
        }
    }
}
