//! Integration: the combined circuit programmed and verified end-to-end
//! across both simulation engines.

use vardelay::analog::{AnalogBlock, EdgeTransform};
use vardelay::core::{CombinedDelayCircuit, FineDelayLine, ModelConfig, SetDelayError};
use vardelay::measure::{mean_delay, tail_mean_delay};
use vardelay::siggen::{BitPattern, EdgeStream};
use vardelay::units::{BitRate, Time, Voltage};
use vardelay::waveform::{to_edge_stream, Waveform};

#[test]
fn programmed_delays_are_realized_across_the_full_range() {
    let cfg = ModelConfig::paper_prototype().quiet();
    let mut circuit = CombinedDelayCircuit::new(&cfg, 3);
    circuit.calibrate();
    let max = circuit.total_range().expect("calibrated");

    let rate = BitRate::from_bps(1.0 / 320e-12);
    let stimulus = EdgeStream::nrz(&BitPattern::clock(24), rate);
    let wf = Waveform::render(&stimulus, &cfg.render);

    circuit.set_delay(Time::ZERO).expect("zero is in range");
    let base = to_edge_stream(&circuit.process(&wf), 0.0, rate.bit_period());

    for frac in [0.1, 0.3, 0.5, 0.7, 0.9] {
        let target = max * frac;
        circuit.set_delay(target).expect("target within range");
        let out = to_edge_stream(&circuit.process(&wf), 0.0, rate.bit_period());
        let realized = tail_mean_delay(&base, &out, 8).expect("streams align");
        assert!(
            (realized - target).abs() < Time::from_ps(2.5),
            "target {target}, realized {realized}"
        );
    }
}

#[test]
fn out_of_range_and_uncalibrated_are_reported() {
    let mut circuit = CombinedDelayCircuit::new(&ModelConfig::paper_prototype(), 1);
    assert_eq!(
        circuit.set_delay(Time::from_ps(1.0)),
        Err(SetDelayError::NotCalibrated)
    );
    circuit.calibrate();
    let max = circuit.total_range().expect("calibrated");
    assert!(matches!(
        circuit.set_delay(max + Time::from_ps(10.0)),
        Err(SetDelayError::OutOfRange { .. })
    ));
}

#[test]
fn engines_agree_on_fine_delay_within_a_picosecond() {
    // The characterized edge model must track the waveform engine over the
    // whole control range and several toggle intervals.
    let cfg = ModelConfig::paper_prototype().quiet();
    let mut line = FineDelayLine::new(&cfg, 5);
    let (vctrls, intervals) = line.default_grids();
    let mut model = line.edge_model(&vctrls, &intervals, 9);

    for interval_ps in [110.0, 208.0, 640.0] {
        let interval = Time::from_ps(interval_ps);
        let rate = BitRate::from_bps(1.0 / interval.as_s());
        let stim = EdgeStream::nrz(&BitPattern::clock(24), rate);
        for v in [0.15, 0.6, 1.05, 1.45] {
            let vctrl = Voltage::from_v(v);
            line.set_vctrl(vctrl);
            model.set_vctrl(vctrl);
            let wf_delay = line.measure_delay(interval);
            let out = model.transform(&stim);
            let edge_delay = mean_delay(&stim, &out).expect("same pattern");
            assert!(
                (wf_delay - edge_delay).abs() < Time::from_ps(1.0),
                "engines disagree at {vctrl}, {interval}: {wf_delay} vs {edge_delay}"
            );
        }
    }
}

#[test]
fn continuous_coverage_across_coarse_tap_boundaries() {
    // The fine range exceeds every coarse step, so every target in the
    // combined range is reachable — including just past each tap.
    let mut circuit = CombinedDelayCircuit::new(&ModelConfig::paper_prototype().quiet(), 2);
    circuit.calibrate();
    for ps in (0..=140).step_by(5) {
        let target = Time::from_ps(ps as f64);
        let setting = circuit
            .set_delay(target)
            .unwrap_or_else(|e| panic!("target {target} rejected: {e}"));
        assert!(
            setting.predicted_error.abs() < Time::from_ps(1.0),
            "target {target}: predicted error {}",
            setting.predicted_error
        );
    }
}
