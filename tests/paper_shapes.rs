//! Integration: the paper's evaluation shapes, asserted at reduced sizes.
//!
//! These mirror the rows of EXPERIMENTS.md: each assertion checks the
//! qualitative claim of a figure (who wins, trend direction, crossover),
//! not the absolute number.

use vardelay::units::Time;
use vardelay_bench::{ablation, eyes, fine_delay, injection, skew};

#[test]
fn fig7_curve_is_monotone_sigmoid_with_56ps_scale_range() {
    let series = fine_delay::fig7_delay_vs_vctrl(21);
    let summary = fine_delay::fig7_summary(&series);
    assert!((45.0..70.0).contains(&summary.range.as_ps()));
    assert!(summary.mid_r_squared > 0.95);
    // Slope flattens near the extremes (the paper's "changes in slope").
    let first_step = series.ys[1] - series.ys[0];
    let mid_step = series.ys[11] - series.ys[10];
    let last_step = series.ys[20] - series.ys[19];
    assert!(mid_step > first_step, "{mid_step} vs {first_step}");
    assert!(mid_step > last_step, "{mid_step} vs {last_step}");
}

#[test]
fn fig9_taps_deviate_by_only_a_few_picoseconds() {
    let taps = fine_delay::fig9_coarse_taps();
    for t in &taps {
        let dev = (t.measured - t.designed).abs();
        assert!(dev < Time::from_ps(5.0), "tap {}: deviation {dev}", t.tap);
    }
    // Monotone ascending taps.
    for w in taps.windows(2) {
        assert!(w[1].measured > w[0].measured);
    }
}

#[test]
fn fig12_fig13_added_jitter_is_bounded_and_grows_with_rate() {
    let slow = eyes::fig12_eye_4g8(3000);
    let fast = eyes::fig13_eye_6g4(3000);
    assert!(slow.added_tj > Time::ZERO);
    assert!(slow.added_tj < Time::from_ps(15.0), "{}", slow.added_tj);
    assert!(fast.added_tj < Time::from_ps(22.0), "{}", fast.added_tj);
    assert!(fast.added_tj > slow.added_tj * 0.8);
}

#[test]
fn fig14_range_compresses_but_circuit_stays_usable() {
    let r = eyes::fig14_rz_6g4(3000);
    let dc = fine_delay::fig7_summary(&fine_delay::fig7_delay_vs_vctrl(9)).range;
    assert!(
        r.fine_range < dc * 0.7,
        "no compression: {} vs {dc}",
        r.fine_range
    );
    assert!(
        r.fine_range > Time::from_ps(15.0),
        "collapsed: {}",
        r.fine_range
    );
    assert!(r.output_tj < Time::from_ps(18.0));
}

#[test]
fn fig15_four_stage_dominates_and_two_stage_dies_first() {
    let (s4, s2) = fine_delay::fig15_range_vs_frequency(&[0.5, 2.6, 4.8, 6.4]);
    for ((_, a), (_, b)) in s4.points().zip(s2.points()) {
        assert!(a > b);
    }
    // The 2-stage range at 6.4 GHz is below the 33 ps coverage requirement
    // ("ineffective"), while the 4-stage held 33 ps to at least 4.8 GHz.
    assert!(s2.ys[3] < 15.0, "2-stage at 6.4 GHz: {}", s2.ys[3]);
    assert!(s4.ys[2] > 33.0, "4-stage at 4.8 GHz: {}", s4.ys[2]);
}

#[test]
fn fig16_fig17_injection_transfer() {
    let r = injection::fig16_injection(3000);
    assert!(r.injected_tj > r.baseline_tj * 2.5);
    let series = injection::fig17_injection_sweep(2000, 5);
    // Roughly linear growth: the last point is within 2x of a linear
    // extrapolation from the second point.
    let lin = series.ys[1] * 4.0;
    assert!(series.ys[4] > lin * 0.4 && series.ys[4] < lin * 2.0);
}

#[test]
fn fig2_deskew_beats_5ps_from_80ps_of_skew() {
    let outcome = skew::fig2_deskew(4);
    assert!(outcome.before_peak_to_peak > Time::from_ps(20.0));
    assert!(outcome.after_peak_to_peak < Time::from_ps(5.0));
}

#[test]
fn ablation_shows_the_four_stage_sweet_spot() {
    let rows = ablation::stage_count_ablation(5, 1500);
    // Below 3 stages the 33 ps coarse step cannot be covered at speed.
    assert!(rows[1].range_at_6g4 < Time::from_ps(33.0));
    assert!(rows[3].dc_range > Time::from_ps(45.0));
    // Jitter keeps growing with depth — the reason not to cascade more.
    assert!(rows[4].added_tj > rows[2].added_tj);
}
