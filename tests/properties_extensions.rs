//! Property-based tests over the extension subsystems: line coding,
//! scrambling, CDR tracking, eye masks, DDJ decomposition and
//! cross-correlation.

use proptest::prelude::*;
use vardelay::analog::DeEmphasis;
use vardelay::ate::BangBangCdr;
use vardelay::measure::{ddj_by_run_length, xcorr_delay, EyeMask};
use vardelay::siggen::encoding::{
    max_run_length, running_disparity_excursion, Decoder8b10b, Encoder8b10b, Symbol,
};
use vardelay::siggen::{BitPattern, EdgeStream, GaussianRj, JitterModel, Scrambler};
use vardelay::units::{BitRate, Time, Voltage};
use vardelay::waveform::{RenderConfig, Waveform};

proptest! {
    /// Any byte sequence survives 8b/10b encode → decode, from any point
    /// in the disparity state machine.
    #[test]
    fn eightb_tenb_round_trips(bytes in proptest::collection::vec(any::<u8>(), 1..100)) {
        let mut enc = Encoder8b10b::new();
        let dec = Decoder8b10b::new();
        for &b in &bytes {
            let group = enc.encode(Symbol::Data(b));
            prop_assert_eq!(dec.decode(&group), Ok(Symbol::Data(b)));
        }
    }

    /// Encoded streams keep their running digital sum bounded and their
    /// run lengths short, whatever the payload.
    #[test]
    fn eightb_tenb_stream_invariants(bytes in proptest::collection::vec(any::<u8>(), 10..300)) {
        let mut enc = Encoder8b10b::new();
        let bits = enc.encode_bytes(&bytes);
        let (lo, hi) = running_disparity_excursion(&bits);
        prop_assert!(lo >= -10 && hi <= 10, "excursion {}..{}", lo, hi);
        prop_assert!(max_run_length(&bits) <= 6);
    }

    /// Scrambling is an involution from any synchronized state.
    #[test]
    fn scrambler_involution(state in 1u16.., bytes in proptest::collection::vec(any::<u8>(), 1..200)) {
        let mut tx = Scrambler::with_state(state);
        let mut rx = Scrambler::with_state(state);
        let scrambled = tx.scrambled(&bytes);
        prop_assert_eq!(rx.scrambled(&scrambled), bytes);
    }

    /// The CDR's residual phase error is always bounded by half a UI,
    /// whatever jitter rides on the stream.
    #[test]
    fn cdr_residual_is_bounded(sigma_ps in 0.0f64..40.0, seed in 0u64..200) {
        let rate = BitRate::from_gbps(6.4);
        let clean = EdgeStream::nrz(&BitPattern::prbs7(1, 500), rate);
        let stream = GaussianRj::new(Time::from_ps(sigma_ps), seed).apply(&clean);
        let cdr = BangBangCdr::new(rate.bit_period(), Time::from_ps(0.5));
        let track = cdr.track(&stream);
        let half_ui = rate.bit_period() * 0.5;
        for r in &track.residual {
            prop_assert!(r.abs() <= half_ui + Time::from_fs(1.0), "residual {}", r);
        }
    }

    /// Hexagonal masks contain their centre, exclude points beyond their
    /// extent, and widening is monotone.
    #[test]
    fn mask_geometry(w in 0.05f64..0.45, h in 0.01f64..0.4, margin in 0.0f64..0.04) {
        let mask = EyeMask::hexagon(w, h);
        prop_assert!(mask.contains(0.0, 0.0));
        prop_assert!(!mask.contains(w * 1.01 + 1e-9, 0.0));
        prop_assert!(!mask.contains(0.0, h * 1.01 + 1e-9));
        // Every point of the base mask stays inside the widened mask.
        let widened = mask.widened(margin);
        for frac in [-0.9, -0.5, 0.0, 0.5, 0.9] {
            let x = w * frac;
            if mask.contains(x, 0.0) {
                prop_assert!(widened.contains(x, 0.0));
            }
        }
    }

    /// Clean streams decompose to (near-)zero DDJ for any PRBS seed.
    #[test]
    fn ddj_of_clean_streams_is_zero(seed in 1u64..200) {
        let s = EdgeStream::nrz(&BitPattern::prbs7(seed, 1000), BitRate::from_gbps(6.4));
        if let Some(d) = ddj_by_run_length(&s, 7) {
            prop_assert!(d.ddj_peak_to_peak < Time::from_ps(0.01));
            prop_assert!(d.residual_rms < Time::from_ps(0.01));
        }
    }

    /// Cross-correlation recovers arbitrary axis shifts exactly.
    #[test]
    fn xcorr_recovers_axis_shifts(shift_ps in -300.0f64..300.0) {
        let stream = EdgeStream::nrz(&BitPattern::prbs7(1, 32), BitRate::from_gbps(2.0));
        let cfg = RenderConfig::new(
            Time::from_ps(1.0),
            Voltage::from_mv(800.0),
            Time::from_ps(60.0),
        );
        let a = Waveform::render(&stream, &cfg);
        let b = a.delayed(Time::from_ps(shift_ps));
        let d = xcorr_delay(&a, &b, Time::from_ps(400.0)).expect("well-posed");
        prop_assert!((d.as_ps() - shift_ps).abs() < 0.05, "{} vs {}", d, shift_ps);
    }

    /// The de-emphasis tap weight matches its dB rating analytically.
    #[test]
    fn deemphasis_tap_weight_consistency(db in 0.0f64..11.9) {
        let drv = DeEmphasis::new(Time::from_ps(100.0), db);
        let d = drv.tap_weight();
        let ratio = (1.0 - d) / (1.0 + d);
        prop_assert!((20.0 * ratio.log10() + db).abs() < 1e-9);
        prop_assert!((0.0..1.0).contains(&d));
    }
}
