//! System tests for the fault-injection subsystem (DESIGN.md §10).
//!
//! Pins the acceptance criteria of the `vardelay-faults` PR end to end:
//!
//! * `Runner::try_run` isolates a panicking task deterministically at
//!   every thread count;
//! * the circuit self-test detects injected stuck-DAC-bit and
//!   non-monotonic-calibration faults;
//! * degraded-mode deskew on an 8-channel HyperTransport-3 bus with two
//!   injected dead channels aligns the six healthy channels to <5 ps and
//!   reports exactly the quarantined pair;
//! * the seeded fault campaign produces byte-identical CSVs serial vs
//!   parallel.

use std::sync::Arc;
use vardelay_ate::scenario::BusScenario;
use vardelay_ate::{DegradedPolicy, DeskewEngine, MeasurementFaultHook};
use vardelay_bench::faults_campaign;
use vardelay_core::selftest::{check_calibration, test_dac};
use vardelay_core::{CombinedDelayCircuit, ModelConfig, VctrlDac};
use vardelay_faults::{corrupt_table, FaultKind, FaultPlan, FaultyDac, TransientFaults};
use vardelay_runner::Runner;
use vardelay_units::Time;

#[test]
fn try_run_isolates_one_injected_panic_at_every_thread_count() {
    // Acceptance: a 64-task batch with one injected panic returns 63 Ok
    // and 1 Err, identically at every thread count.
    let run = |runner: Runner| {
        runner.try_run(64, |i| {
            assert!(i != 17, "injected fault in task 17");
            i * i
        })
    };
    let reference = run(Runner::serial());
    assert_eq!(reference.iter().filter(|r| r.is_ok()).count(), 63);
    assert_eq!(reference.iter().filter(|r| r.is_err()).count(), 1);
    assert!(reference[17].is_err());
    for threads in [2, 4, 8, 16] {
        assert_eq!(run(Runner::new(threads)), reference, "threads={threads}");
    }
}

#[test]
fn self_test_detects_the_injected_dac_and_calibration_faults() {
    vardelay_faults::set_enabled(true);
    let plan = FaultPlan::new(99)
        .with(FaultKind::DacStuckLow { bit: 11 })
        .with(FaultKind::CalibrationSpike {
            point: 4,
            spike: Time::from_ps(80.0),
        });

    let mut dac = FaultyDac::from_plan(VctrlDac::twelve_bit(), plan.active(), plan.seed_for(0));
    let dac_health = test_dac(&mut dac);
    assert_eq!(dac_health.stuck_low, 1 << 11, "{dac_health:?}");

    let mut circuit = CombinedDelayCircuit::new(&ModelConfig::paper_prototype().quiet(), 1);
    let clean = circuit.calibrate().clone();
    let spiked = corrupt_table(&clean, 4, Time::from_ps(80.0));
    assert!(check_calibration(&clean, Time::from_ps(15.0)).is_healthy());
    assert!(!check_calibration(&spiked, Time::from_ps(15.0)).is_healthy());
}

#[test]
fn ht3_bus_with_two_dead_channels_still_aligns_the_healthy_six() {
    vardelay_faults::set_enabled(true);
    let plan = FaultPlan::new(2008)
        .with(FaultKind::DeadDriver { channel: 2 })
        .with(FaultKind::DeadDriver { channel: 5 });
    let transients = TransientFaults::from_plan(plan.active());
    let hook: MeasurementFaultHook = Arc::new(move |c, a| transients.fails(c, a));

    let mut scenario = BusScenario::hypertransport3(2008);
    let outcome = DeskewEngine::new(&ModelConfig::paper_prototype(), 2008)
        .with_measurement_faults(hook)
        .run_degraded(scenario.bus_mut(), DegradedPolicy::default())
        .expect("six healthy channels remain");

    assert_eq!(outcome.quarantined_channels(), vec![2, 5]);
    assert_eq!(outcome.healthy_count(), 6);
    assert!(
        outcome.after_peak_to_peak < scenario.alignment_requirement(),
        "healthy channels aligned to {} (need {})",
        outcome.after_peak_to_peak,
        scenario.alignment_requirement()
    );
}

#[test]
fn fault_campaign_csv_is_byte_identical_serial_vs_parallel() {
    vardelay_faults::set_enabled(true);
    let serial = faults_campaign::faults_campaign_with(Runner::new(1));
    let parallel = faults_campaign::faults_campaign_with(Runner::new(4));
    assert_eq!(serial.table().to_csv(), parallel.table().to_csv());
    assert_eq!(serial.detected(), serial.expected());
    assert!(serial.degraded_all_ok());
}
