//! Integration: the ATE deskew application end-to-end, plus receiver-side
//! verification.

use vardelay::ate::{BusScenario, DeskewEngine, DutReceiver, ParallelBus};
use vardelay::core::ModelConfig;
use vardelay::units::{BitRate, Time};

#[test]
fn hypertransport_scenario_converges_under_5ps() {
    let mut scenario = BusScenario::hypertransport3(31);
    assert!(!scenario.ate_native_is_sufficient());
    let outcome = DeskewEngine::new(&ModelConfig::paper_prototype(), 31)
        .run(scenario.bus_mut())
        .expect("healthy bus deskews");
    assert!(
        outcome.after_peak_to_peak < scenario.alignment_requirement(),
        "after {} vs requirement {}",
        outcome.after_peak_to_peak,
        scenario.alignment_requirement()
    );
}

#[test]
fn corrected_bus_samples_cleanly_at_a_common_phase() {
    let mut bus = ParallelBus::with_random_skew(4, BitRate::from_gbps(6.4), Time::from_ps(80.0), 8);
    let outcome = DeskewEngine::new(&ModelConfig::paper_prototype(), 8)
        .run(&mut bus)
        .expect("healthy bus deskews");
    let rx = DutReceiver::ht3();
    let phase = rx.best_phase(&outcome.corrected_streams[0], 64);
    for (i, stream) in outcome.corrected_streams.iter().enumerate() {
        let rate = rx.violation_rate(stream, phase);
        assert!(rate < 1e-3, "channel {i}: violation rate {rate}");
    }
}

#[test]
fn uncorrected_bus_fails_at_the_receiver() {
    // The "before" half of Fig. 2: with ±80 ps of skew at a 156 ps UI,
    // no single sampling phase is clean for all channels.
    let bus = ParallelBus::with_random_skew(4, BitRate::from_gbps(6.4), Time::from_ps(80.0), 14);
    let streams = bus.generate_all();
    let rx = DutReceiver::ht3();
    let phase = rx.best_phase(&streams[0], 64);
    let worst = streams
        .iter()
        .map(|s| rx.violation_rate(s, phase))
        .fold(0.0f64, f64::max);
    assert!(worst > 0.05, "skewed bus sampled cleanly?! worst {worst}");
}

#[test]
fn deskew_is_deterministic_per_seed() {
    let run = |seed| {
        let mut bus =
            ParallelBus::with_random_skew(4, BitRate::from_gbps(6.4), Time::from_ps(60.0), seed);
        DeskewEngine::new(&ModelConfig::paper_prototype(), seed)
            .run(&mut bus)
            .expect("healthy bus deskews")
    };
    let a = run(5);
    let b = run(5);
    assert_eq!(a.after_peak_to_peak, b.after_peak_to_peak);
    assert_eq!(a.corrections, b.corrections);
}

#[test]
fn instance_error_degrades_alignment_gracefully() {
    let run = |sigma_ps: f64| {
        let mut bus =
            ParallelBus::with_random_skew(6, BitRate::from_gbps(6.4), Time::from_ps(80.0), 77);
        DeskewEngine::new(&ModelConfig::paper_prototype(), 77)
            .with_instance_error(Time::from_ps(sigma_ps))
            .run(&mut bus)
            .expect("healthy bus deskews")
            .after_peak_to_peak
    };
    let tight = run(0.1);
    let loose = run(4.0);
    assert!(loose > tight, "{tight} vs {loose}");
}
