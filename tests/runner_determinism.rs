//! Parallel-vs-serial determinism regression tests.
//!
//! The runner's contract (DESIGN.md §8) is that every experiment is
//! *bit-identical* at every thread count: results are collected by task
//! index and every task derives private state (fresh blocks, per-task RNG
//! streams) instead of sharing a sequential generator. These tests pin
//! that contract on the two experiments the paper's applications depend
//! on — the Fig. 7 fine-delay sweep (E1) and the Fig. 2 bus deskew (E9) —
//! by comparing the exact CSV bytes a `repro` run would write.

use vardelay_ate::report::deskew_table;
use vardelay_bench::{fine_delay, skew};
use vardelay_core::{FineDelayLine, ModelConfig};
use vardelay_obs as obs;
use vardelay_obs::journal;
use vardelay_obs::json::Value;
use vardelay_runner::Runner;

#[test]
fn fig7_series_csv_is_byte_identical_at_any_thread_count() {
    let serial = fine_delay::fig7_delay_vs_vctrl_with(Runner::new(1), 7).to_csv();
    for threads in [2, 8] {
        let parallel = fine_delay::fig7_delay_vs_vctrl_with(Runner::new(threads), 7).to_csv();
        assert_eq!(serial, parallel, "fig7 CSV diverged at {threads} threads");
    }
}

#[test]
fn fig15_series_csv_is_byte_identical_at_any_thread_count() {
    let freqs = [0.5, 6.4];
    let (s4, s2) = fine_delay::fig15_range_vs_frequency_with(Runner::new(1), &freqs);
    let (p4, p2) = fine_delay::fig15_range_vs_frequency_with(Runner::new(4), &freqs);
    assert_eq!(s4.to_csv(), p4.to_csv());
    assert_eq!(s2.to_csv(), p2.to_csv());
}

#[test]
fn deskew_outcome_is_byte_identical_at_any_thread_count() {
    let serial = skew::fig2_deskew_with(Runner::new(1), 4);
    let serial_csv = deskew_table(&serial).to_csv();
    for threads in [2, 8] {
        let parallel = skew::fig2_deskew_with(Runner::new(threads), 4);
        assert_eq!(
            serial, parallel,
            "deskew outcome diverged at {threads} threads"
        );
        assert_eq!(serial_csv, deskew_table(&parallel).to_csv());
    }
}

/// Obs instrumentation (spans, counters, histograms) is observational by
/// contract: with it on or off, the E1/E6/E9 CSV bytes must not move.
/// (`set_enabled` is process-global; the other tests in this binary never
/// read obs state, so flipping it here cannot affect their results —
/// that's exactly the property under test.)
#[test]
fn obs_instrumentation_leaves_csvs_byte_identical() {
    let run_all = || {
        let e1 = fine_delay::fig7_delay_vs_vctrl_with(Runner::new(2), 7).to_csv();
        let (s4, s2) = fine_delay::fig15_range_vs_frequency_with(Runner::new(2), &[0.5, 6.4]);
        let e9 = deskew_table(&skew::fig2_deskew_with(Runner::new(2), 4)).to_csv();
        (e1, s4.to_csv(), s2.to_csv(), e9)
    };
    obs::set_enabled(true);
    let instrumented = run_all();
    // Spans and counters actually recorded while enabled.
    assert!(
        obs::counter("runner.batches").get() > 0,
        "instrumented run must hit the runner counters"
    );
    obs::set_enabled(false);
    let quiet = run_all();
    obs::set_enabled(true);
    assert_eq!(instrumented, quiet, "obs on/off changed experiment bytes");
}

/// The journal contract the repro binary relies on: two consecutive
/// `repro all` runs append two valid records (no overwrite), and the
/// regression gate can diff them.
#[test]
fn two_all_runs_append_two_valid_journal_records() {
    let mut path = std::env::temp_dir();
    path.push(format!("vardelay_journal_det_{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);

    let record = |wall_s: f64| {
        Value::obj()
            .with("schema", journal::SCHEMA_VERSION)
            .with("experiments", "all")
            .with("threads", 1u64)
            .with("wall_s", wall_s)
            .with("csv_points", 1934u64)
    };
    journal::append(&path, &record(6.5)).unwrap();
    journal::append(&path, &record(6.4)).unwrap();

    let records = journal::load(&path).unwrap();
    assert_eq!(records.len(), 2, "both runs must survive in the journal");
    for r in &records {
        assert_eq!(r.get("experiments").and_then(Value::as_str), Some("all"));
        assert_eq!(
            r.get("schema").and_then(Value::as_u64),
            Some(journal::SCHEMA_VERSION)
        );
        assert!(r.get("wall_s").and_then(Value::as_f64).is_some());
    }
    let cmp = journal::compare_latest(&records, "all", journal::DEFAULT_THRESHOLD).unwrap();
    assert_eq!(cmp.older_wall_s, 6.5);
    assert_eq!(cmp.newer_wall_s, 6.4);
    assert!(!cmp.regressed, "{cmp}");
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn characterization_is_identical_across_thread_counts_and_cache_states() {
    let line = FineDelayLine::new(&ModelConfig::paper_prototype().quiet(), 1);
    let (vctrls, intervals) = line.default_grids();
    let vctrls = &vctrls[..3];
    let intervals = &intervals[..2];

    let serial = line.characterize_with(Runner::new(1), vctrls, intervals);
    for threads in [2, 8] {
        // Clearing between runs forces a real remeasure at this thread
        // count instead of a trivial cache hit.
        vardelay_analog::clear_characterization_cache();
        let parallel = line.characterize_with(Runner::new(threads), vctrls, intervals);
        assert_eq!(serial, parallel, "table diverged at {threads} threads");
    }
    // And the warm-cache path returns the same table again.
    let cached = line.characterize_with(Runner::new(3), vctrls, intervals);
    assert_eq!(serial, cached);
}
