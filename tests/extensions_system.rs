//! Integration: the extension features working together through the
//! public API — spectral verification of injected jitter, multichannel
//! programming, drift recovery, coded traffic.

use vardelay::core::{CalibrationStrategy, JitterInjector, ModelConfig, MultiChannelDelay, TempCo};
use vardelay::measure::{separate_rj_pj, tie_sequence};
use vardelay::siggen::{BitPattern, EdgeStream, JitterModel, SinusoidalPj};
use vardelay::units::{BitRate, Frequency, Time, Voltage};

#[test]
fn injected_gaussian_noise_is_spectrally_tone_free() {
    // Gaussian injection must show up as RJ-like (no dominant tones),
    // distinguishing the injector from a PJ source.
    let mut injector = JitterInjector::new(&ModelConfig::paper_prototype().quiet(), 21);
    injector.set_noise_peak_to_peak(Voltage::from_mv(600.0));
    let stream = EdgeStream::nrz(&BitPattern::clock(8000), BitRate::from_gbps(3.2));
    let out = injector.inject(&stream);
    let tie = tie_sequence(&out);
    let split = separate_rj_pj(&tie, out.ui(), 3).expect("long capture");
    assert!(
        split.rj_rms > Time::from_ps(2.0),
        "injected randomness invisible: {}",
        split.rj_rms
    );
    // Any residual tone stays small relative to the random part.
    for tone in &split.tones {
        assert!(
            tone.amplitude < split.rj_rms * 2.0,
            "spurious dominant tone {tone:?}"
        );
    }
}

#[test]
fn pj_on_the_input_survives_the_circuit_and_is_detected() {
    // A deliberate PJ tone on the stimulus must still be identifiable at
    // the circuit output — the measurement chain the §5 application needs.
    let rate = BitRate::from_gbps(3.2);
    let clean = EdgeStream::nrz(&BitPattern::clock(8000), rate);
    let tone_freq = Frequency::from_mhz(23.0);
    let input = SinusoidalPj::new(Time::from_ps(5.0), tone_freq, 0.0).apply(&clean);

    let mut injector = JitterInjector::new(&ModelConfig::paper_prototype().quiet(), 5);
    let out = injector.inject(&input);
    let tie = tie_sequence(&out);
    // Clock pattern: edge spacing is one UI.
    let split = separate_rj_pj(&tie, rate.bit_period(), 3).expect("long capture");
    let found = split
        .tones
        .iter()
        .any(|t| (t.frequency.as_mhz() - 23.0).abs() < 3.0 && t.amplitude > Time::from_ps(3.0));
    assert!(found, "tone not recovered: {:?}", split.tones);
}

#[test]
fn multichannel_deskews_a_staircase_to_subpicosecond_prediction() {
    let mut unit = MultiChannelDelay::new(&ModelConfig::paper_prototype().quiet(), 4, 3);
    unit.calibrate(CalibrationStrategy::PerChannel);
    let targets: Vec<Time> = (0..4)
        .map(|i| Time::from_ps(20.0 + 30.0 * i as f64))
        .collect();
    let settings = unit.set_delays(&targets).expect("targets in range");
    for (t, s) in targets.iter().zip(&settings) {
        assert!(
            s.predicted_error.abs() < Time::from_ps(0.5),
            "target {t}: {}",
            s.predicted_error
        );
    }
}

#[test]
fn drifted_unit_recovers_after_recalibration() {
    let cold = ModelConfig::paper_prototype().quiet();
    let hot = cold.at_temperature_offset(35.0, &TempCo::default());
    let mut unit = MultiChannelDelay::new(&hot, 2, 9);
    unit.calibrate(CalibrationStrategy::PerChannel);
    // Recalibrated on the hot hardware: accuracy is restored.
    let acc = unit
        .setting_accuracy(Time::from_ps(60.0))
        .expect("in range");
    assert!(acc < Time::from_ps(5.0), "accuracy {acc}");
}

#[test]
fn coded_and_scrambled_traffic_share_the_jitter_budget() {
    let r = vardelay_bench::extensions::x4_coded_traffic(3000);
    assert!(r.coded_tj > Time::ZERO && r.prbs_tj > Time::ZERO);
    let ratio = r.coded_tj / r.prbs_tj;
    assert!((0.5..2.0).contains(&ratio), "ratio {ratio}");
}

#[test]
fn injection_engines_cross_validate() {
    // The edge-domain injector (characterized table, per-edge Vctrl) and
    // the waveform-domain modulated fine line (per-sample amplitude) must
    // agree on the injected jitter magnitude for the same noise program.
    use vardelay::analog::OuNoise;
    use vardelay::core::FineDelayLine;
    use vardelay::measure::JitterStats;
    use vardelay::waveform::{to_edge_stream, Waveform};

    let cfg = ModelConfig::paper_prototype().quiet();
    let rate = BitRate::from_gbps(3.2);
    let bits = 600;
    let stream = EdgeStream::nrz(&BitPattern::clock(bits), rate);
    let sigma = Voltage::from_mv(120.0);
    let bw = Frequency::from_mhz(200.0);

    // Waveform engine: render the Vctrl trace from the same OU process
    // and run the modulated fine line.
    let wf = Waveform::render(&stream, &cfg.render);
    let mut noise = OuNoise::new(sigma, bw, 33);
    let mut vctrl = noise.waveform(wf.t0(), wf.dt(), wf.len());
    vctrl.offset(Voltage::from_v(0.75));
    let mut line = FineDelayLine::new(&cfg, 1);
    let out_wf = line.process_modulated(&wf, &vctrl);
    let out_stream = to_edge_stream(&out_wf, 0.0, rate.bit_period());
    let wf_rms = JitterStats::from_times(&tie_sequence(&out_stream))
        .expect("edges exist")
        .rms;

    // Edge engine: the injector with the same noise statistics.
    let mut injector = JitterInjector::new(&cfg, 33);
    injector.set_noise(sigma, bw);
    let out_edges = injector.inject(&EdgeStream::nrz(&BitPattern::clock(bits * 4), rate));
    let edge_rms = JitterStats::from_times(&tie_sequence(&out_edges))
        .expect("edges exist")
        .rms;

    assert!(
        wf_rms > Time::from_ps(1.0),
        "waveform path injected nothing"
    );
    assert!(edge_rms > Time::from_ps(1.0), "edge path injected nothing");
    let ratio = wf_rms / edge_rms;
    assert!(
        (0.5..2.0).contains(&ratio),
        "engines disagree: waveform {wf_rms} vs edge {edge_rms}"
    );
}

#[test]
fn injection_noise_bandwidth_matters() {
    // A lower-bandwidth noise source produces slower Vctrl wander, which
    // the per-edge sampling converts into more correlated (but comparably
    // sized) jitter; the RMS must stay within a factor of the fast case.
    let stream = EdgeStream::nrz(&BitPattern::clock(6000), BitRate::from_gbps(3.2));
    let cfg = ModelConfig::paper_prototype().quiet();
    let rms_at = |bw_mhz: f64| {
        let mut injector = JitterInjector::new(&cfg, 17);
        injector.set_noise(Voltage::from_mv(120.0), Frequency::from_mhz(bw_mhz));
        let out = injector.inject(&stream);
        let tie = tie_sequence(&out);
        vardelay::measure::JitterStats::from_times(&tie)
            .expect("capture carries edges")
            .rms
    };
    let slow = rms_at(5.0);
    let fast = rms_at(500.0);
    assert!(slow > Time::from_ps(1.0) && fast > Time::from_ps(1.0));
    assert!(slow / fast < 3.0 && fast / slow < 3.0, "{slow} vs {fast}");
}
